"""Multi-core (CMP) extensions of the reusable model (Table 6 of the paper).

Two effects distinguish execution on multi-core nodes from the one-core-per-
node model of Table 5:

1. **On-chip vs off-node communication.**  When the cores of a node occupy a
   ``Cx x Cy`` rectangle of the logical processor array, a core's east/west/
   north/south partner may live on the same chip; those messages use the
   (cheaper) on-chip sub-models of Table 1(b).  Table 6 gives the position
   rules, which :class:`~repro.core.decomposition.CoreMapping` implements.

2. **Shared-bus contention.**  During the steady-state processing of the tile
   stack all four boundary messages of every core are in flight each tile, so
   cores sharing a memory bus / NIC interfere during the DMA transfer of the
   message payload.  Table 6 adds an interference term
   ``I = odma + MessageSize * Gdma`` to selected send/receive operations:

   ======================  ==========================================
   cores per bus           penalty
   ======================  ==========================================
   1                       none
   2  (1x2 rectangle)      ``I`` on ReceiveN and SendS
   4  (2x2)                ``I`` on every send and receive
   8  (2x4)                ``2 I`` on every send and receive
   16 (4x4)                ``4 I`` on every send and receive (extrapolated)
   ======================  ==========================================

   i.e. for four or more cores per bus the multiplier is ``cores_per_bus/4``.
   A node with several independent buses (Section 5.3's 16-core, 4-bus design
   point) is treated as ``cores_per_bus = cores_per_node / buses_per_node``.

This module computes the per-grid-position communication costs used in the
``StartP`` pipeline-fill recurrence (equation (r2b)) and the contention-
adjusted costs used in the stack-processing time (equation (r4)).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.apps.base import WavefrontSpec
from repro.core.comm import CommunicationCosts
from repro.core.decomposition import CoreMapping, ProcessorGrid, default_core_mapping
from repro.core.loggp import Platform
from repro.util.caching import call_with_unhashable_fallback, register_cache_clearer

__all__ = [
    "ContentionPenalty",
    "FillStepCosts",
    "StackCommCosts",
    "clear_core_mapping_cache",
    "interference_term",
    "contention_penalty",
    "fill_step_costs",
    "stack_comm_costs",
    "resolve_core_mapping",
]


def _chip_rectangle(mapping: CoreMapping, cores_per_chip: int) -> CoreMapping:
    """Attach a ``cores_per_chip`` sub-rectangle dividing ``mapping``.

    Prefers the paper's default shape for the chip size; when that shape
    does not divide the node rectangle the most square dividing
    factorisation is used instead.  Raises when none exists.
    """
    preferred = default_core_mapping(cores_per_chip)
    if mapping.cx % preferred.cx == 0 and mapping.cy % preferred.cy == 0:
        return mapping.with_chip(preferred.cx, preferred.cy)
    candidates = [
        (a, cores_per_chip // a)
        for a in range(1, cores_per_chip + 1)
        if cores_per_chip % a == 0
        and mapping.cx % a == 0
        and mapping.cy % (cores_per_chip // a) == 0
    ]
    if not candidates:
        raise ValueError(
            f"no {cores_per_chip}-core chip rectangle divides the "
            f"{mapping.cx}x{mapping.cy} node rectangle"
        )
    best = min(candidates, key=lambda shape: abs(shape[0] - shape[1]))
    return mapping.with_chip(best[0], best[1])


def resolve_core_mapping(platform: Platform, core_mapping: CoreMapping | None) -> CoreMapping:
    """The core rectangle to use: the caller's, or the paper's default for
    the platform's ``cores_per_node``.

    On hierarchical platforms (``node.cores_per_chip`` subdividing the
    node) the resolved mapping carries the chip sub-rectangle, so every
    consumer - analytic cost tables, the simulator's rank placement -
    classifies hops identically.  An explicit mapping that already pins a
    chip rectangle is passed through untouched.  Resolutions are memoised
    (both inputs are immutable value objects); unhashable subclasses fall
    back to the uncached computation.
    """
    return call_with_unhashable_fallback(
        _resolve_core_mapping_cached, _resolve_core_mapping_uncached,
        platform, core_mapping,
    )


def _resolve_core_mapping_uncached(
    platform: Platform, core_mapping: CoreMapping | None
) -> CoreMapping:
    if core_mapping is not None:
        if core_mapping.cores_per_node != platform.node.cores_per_node:
            raise ValueError(
                f"core mapping {core_mapping.cx}x{core_mapping.cy} does not match "
                f"platform with {platform.node.cores_per_node} cores per node"
            )
        mapping = core_mapping
    else:
        mapping = default_core_mapping(platform.node.cores_per_node)
    cores_per_chip = platform.node.cores_per_chip
    if (
        cores_per_chip is not None
        and mapping.chip_cx is None
        and cores_per_chip < mapping.cores_per_node
    ):
        mapping = _chip_rectangle(mapping, cores_per_chip)
    return mapping


_resolve_core_mapping_cached = lru_cache(maxsize=4096)(_resolve_core_mapping_uncached)


@register_cache_clearer
def clear_core_mapping_cache() -> None:
    """Drop all memoised :func:`resolve_core_mapping` resolutions."""
    _resolve_core_mapping_cached.cache_clear()


def interference_term(platform: Platform, message_bytes: float) -> float:
    """The bus interference term ``I = odma + MessageSize * Gdma`` (Table 6)."""
    if platform.on_chip is None:
        return 0.0
    return (
        platform.on_chip.dma_setup
        + message_bytes * platform.on_chip.gap_per_byte_dma
    )


@dataclass(frozen=True)
class ContentionPenalty:
    """Contention penalties (µs) to add to each boundary operation."""

    send_east: float = 0.0
    send_south: float = 0.0
    receive_west: float = 0.0
    receive_north: float = 0.0

    @property
    def total(self) -> float:
        return self.send_east + self.send_south + self.receive_west + self.receive_north


def contention_penalty(
    platform: Platform,
    spec: WavefrontSpec,
    grid: ProcessorGrid,
    core_mapping: CoreMapping | None = None,
) -> ContentionPenalty:
    """Per-tile contention penalties for the stack-processing phase (Table 6)."""
    mapping = resolve_core_mapping(platform, core_mapping)
    cores_per_bus = max(
        1, mapping.cores_per_node // platform.node.buses_per_node
    )
    if cores_per_bus <= 1 or platform.on_chip is None:
        return ContentionPenalty()
    i_ew = interference_term(platform, spec.message_size_ew(grid))
    i_ns = interference_term(platform, spec.message_size_ns(grid))
    if cores_per_bus == 2:
        # Dual-core (1x2 rectangle): interference on the north/south pair only.
        return ContentionPenalty(send_south=i_ns, receive_north=i_ns)
    multiplier = cores_per_bus / 4.0
    return ContentionPenalty(
        send_east=multiplier * i_ew,
        send_south=multiplier * i_ns,
        receive_west=multiplier * i_ew,
        receive_north=multiplier * i_ns,
    )


@dataclass(frozen=True)
class FillStepCosts:
    """Per-position communication costs entering the ``StartP`` recurrence.

    ``total_comm_east`` and ``receive_north`` make up the "message from the
    west arrives last" branch of equation (r2b); ``send_east`` and
    ``total_comm_south`` the "message from the north arrives last" branch.
    """

    total_comm_east: float
    receive_north: float
    send_east: float
    total_comm_south: float


def fill_step_costs(
    platform: Platform,
    spec: WavefrontSpec,
    grid: ProcessorGrid,
    i: int,
    j: int,
    core_mapping: CoreMapping | None = None,
) -> FillStepCosts:
    """Communication costs at grid position ``(i, j)`` for equation (r2b).

    Each of the four operations is classified by hop level from the position
    of ``(i, j)`` inside its node's ``Cx x Cy`` core rectangle (Table 6) -
    and, on hierarchical platforms, inside the chip sub-rectangle: intra-chip
    hops use the on-chip sub-model, intra-node (chip-to-chip) hops the
    platform's ``intra_node`` LogGP parameters, inter-node hops the off-node
    sub-model.  For a single-core-per-node platform everything is off-node
    and the costs are position independent.
    """
    mapping = resolve_core_mapping(platform, core_mapping)
    ew_bytes = spec.message_size_ew(grid)
    ns_bytes = spec.message_size_ns(grid)

    multicore = platform.is_multicore and mapping.cores_per_node > 1
    if not multicore:
        costs_ew = CommunicationCosts.for_message(platform, ew_bytes, level="machine")
        costs_ns = CommunicationCosts.for_message(platform, ns_bytes, level="machine")
        return FillStepCosts(
            total_comm_east=costs_ew.total,
            receive_north=costs_ns.receive,
            send_east=costs_ew.send,
            total_comm_south=costs_ns.total,
        )

    def ew_costs(level: str) -> CommunicationCosts:
        return CommunicationCosts.for_message(platform, ew_bytes, level=level)

    def ns_costs(level: str) -> CommunicationCosts:
        return CommunicationCosts.for_message(platform, ns_bytes, level=level)

    return FillStepCosts(
        total_comm_east=ew_costs(mapping.comm_from_west_level(i, j)).total,
        receive_north=ns_costs(mapping.receive_north_level(i, j)).receive,
        send_east=ew_costs(mapping.send_east_level(i, j)).send,
        total_comm_south=ns_costs(mapping.send_south_level(i, j)).total,
    )


@dataclass(frozen=True)
class StackCommCosts:
    """Per-tile communication costs for the stack-processing time (eq. (r4)).

    Equation (r4) uses *off-node* costs for all four operations (the stack is
    processed at the rate of the slowest communication in each direction)
    plus the Table 6 contention penalties on multi-core nodes.
    """

    receive_west: float
    receive_north: float
    send_east: float
    send_south: float
    contention: ContentionPenalty

    @property
    def per_tile_comm(self) -> float:
        """Total communication time charged per tile."""
        return (
            self.receive_west
            + self.receive_north
            + self.send_east
            + self.send_south
            + self.contention.total
        )


def stack_comm_costs(
    platform: Platform,
    spec: WavefrontSpec,
    grid: ProcessorGrid,
    core_mapping: CoreMapping | None = None,
) -> StackCommCosts:
    """The equation (r4) communication costs, with Table 6 contention."""
    ew_bytes = spec.message_size_ew(grid)
    ns_bytes = spec.message_size_ns(grid)
    costs_ew = CommunicationCosts.for_message(platform, ew_bytes, on_chip=False)
    costs_ns = CommunicationCosts.for_message(platform, ns_bytes, on_chip=False)
    contention = contention_penalty(platform, spec, grid, core_mapping)
    return StackCommCosts(
        receive_west=costs_ew.receive,
        receive_north=costs_ns.receive,
        send_east=costs_ew.send,
        send_south=costs_ns.send,
        contention=contention,
    )
