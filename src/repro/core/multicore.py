"""Multi-core (CMP) extensions of the reusable model (Table 6 of the paper).

Two effects distinguish execution on multi-core nodes from the one-core-per-
node model of Table 5:

1. **On-chip vs off-node communication.**  When the cores of a node occupy a
   ``Cx x Cy`` rectangle of the logical processor array, a core's east/west/
   north/south partner may live on the same chip; those messages use the
   (cheaper) on-chip sub-models of Table 1(b).  Table 6 gives the position
   rules, which :class:`~repro.core.decomposition.CoreMapping` implements.

2. **Shared-bus contention.**  During the steady-state processing of the tile
   stack all four boundary messages of every core are in flight each tile, so
   cores sharing a memory bus / NIC interfere during the DMA transfer of the
   message payload.  Table 6 adds an interference term
   ``I = odma + MessageSize * Gdma`` to selected send/receive operations:

   ======================  ==========================================
   cores per bus           penalty
   ======================  ==========================================
   1                       none
   2  (1x2 rectangle)      ``I`` on ReceiveN and SendS
   4  (2x2)                ``I`` on every send and receive
   8  (2x4)                ``2 I`` on every send and receive
   16 (4x4)                ``4 I`` on every send and receive (extrapolated)
   ======================  ==========================================

   i.e. for four or more cores per bus the multiplier is ``cores_per_bus/4``.
   A node with several independent buses (Section 5.3's 16-core, 4-bus design
   point) is treated as ``cores_per_bus = cores_per_node / buses_per_node``.

This module computes the per-grid-position communication costs used in the
``StartP`` pipeline-fill recurrence (equation (r2b)) and the contention-
adjusted costs used in the stack-processing time (equation (r4)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import WavefrontSpec
from repro.core.comm import CommunicationCosts
from repro.core.decomposition import CoreMapping, ProcessorGrid, default_core_mapping
from repro.core.loggp import Platform

__all__ = [
    "ContentionPenalty",
    "FillStepCosts",
    "StackCommCosts",
    "interference_term",
    "contention_penalty",
    "fill_step_costs",
    "stack_comm_costs",
    "resolve_core_mapping",
]


def resolve_core_mapping(platform: Platform, core_mapping: CoreMapping | None) -> CoreMapping:
    """The core rectangle to use: the caller's, or the paper's default for
    the platform's ``cores_per_node``."""
    if core_mapping is not None:
        if core_mapping.cores_per_node != platform.node.cores_per_node:
            raise ValueError(
                f"core mapping {core_mapping.cx}x{core_mapping.cy} does not match "
                f"platform with {platform.node.cores_per_node} cores per node"
            )
        return core_mapping
    return default_core_mapping(platform.node.cores_per_node)


def interference_term(platform: Platform, message_bytes: float) -> float:
    """The bus interference term ``I = odma + MessageSize * Gdma`` (Table 6)."""
    if platform.on_chip is None:
        return 0.0
    return (
        platform.on_chip.dma_setup
        + message_bytes * platform.on_chip.gap_per_byte_dma
    )


@dataclass(frozen=True)
class ContentionPenalty:
    """Contention penalties (µs) to add to each boundary operation."""

    send_east: float = 0.0
    send_south: float = 0.0
    receive_west: float = 0.0
    receive_north: float = 0.0

    @property
    def total(self) -> float:
        return self.send_east + self.send_south + self.receive_west + self.receive_north


def contention_penalty(
    platform: Platform,
    spec: WavefrontSpec,
    grid: ProcessorGrid,
    core_mapping: CoreMapping | None = None,
) -> ContentionPenalty:
    """Per-tile contention penalties for the stack-processing phase (Table 6)."""
    mapping = resolve_core_mapping(platform, core_mapping)
    cores_per_bus = max(
        1, mapping.cores_per_node // platform.node.buses_per_node
    )
    if cores_per_bus <= 1 or platform.on_chip is None:
        return ContentionPenalty()
    i_ew = interference_term(platform, spec.message_size_ew(grid))
    i_ns = interference_term(platform, spec.message_size_ns(grid))
    if cores_per_bus == 2:
        # Dual-core (1x2 rectangle): interference on the north/south pair only.
        return ContentionPenalty(send_south=i_ns, receive_north=i_ns)
    multiplier = cores_per_bus / 4.0
    return ContentionPenalty(
        send_east=multiplier * i_ew,
        send_south=multiplier * i_ns,
        receive_west=multiplier * i_ew,
        receive_north=multiplier * i_ns,
    )


@dataclass(frozen=True)
class FillStepCosts:
    """Per-position communication costs entering the ``StartP`` recurrence.

    ``total_comm_east`` and ``receive_north`` make up the "message from the
    west arrives last" branch of equation (r2b); ``send_east`` and
    ``total_comm_south`` the "message from the north arrives last" branch.
    """

    total_comm_east: float
    receive_north: float
    send_east: float
    total_comm_south: float


def fill_step_costs(
    platform: Platform,
    spec: WavefrontSpec,
    grid: ProcessorGrid,
    i: int,
    j: int,
    core_mapping: CoreMapping | None = None,
) -> FillStepCosts:
    """Communication costs at grid position ``(i, j)`` for equation (r2b).

    Each of the four operations is classified as on-chip or off-node from the
    position of ``(i, j)`` inside its node's ``Cx x Cy`` core rectangle
    (Table 6).  For a single-core-per-node platform everything is off-node
    and the costs are position independent.
    """
    mapping = resolve_core_mapping(platform, core_mapping)
    ew_bytes = spec.message_size_ew(grid)
    ns_bytes = spec.message_size_ns(grid)

    multicore = platform.is_multicore and mapping.cores_per_node > 1
    comm_e_on_chip = multicore and mapping.comm_from_west_on_chip(i, j)
    recv_n_on_chip = multicore and mapping.receive_north_on_chip(i, j)
    send_e_on_chip = multicore and mapping.send_east_on_chip(i, j)
    comm_s_on_chip = multicore and mapping.send_south_on_chip(i, j)

    costs_ew_off = CommunicationCosts.for_message(platform, ew_bytes, on_chip=False)
    costs_ns_off = CommunicationCosts.for_message(platform, ns_bytes, on_chip=False)
    costs_ew_on = (
        CommunicationCosts.for_message(platform, ew_bytes, on_chip=True)
        if multicore
        else costs_ew_off
    )
    costs_ns_on = (
        CommunicationCosts.for_message(platform, ns_bytes, on_chip=True)
        if multicore
        else costs_ns_off
    )

    return FillStepCosts(
        total_comm_east=(costs_ew_on if comm_e_on_chip else costs_ew_off).total,
        receive_north=(costs_ns_on if recv_n_on_chip else costs_ns_off).receive,
        send_east=(costs_ew_on if send_e_on_chip else costs_ew_off).send,
        total_comm_south=(costs_ns_on if comm_s_on_chip else costs_ns_off).total,
    )


@dataclass(frozen=True)
class StackCommCosts:
    """Per-tile communication costs for the stack-processing time (eq. (r4)).

    Equation (r4) uses *off-node* costs for all four operations (the stack is
    processed at the rate of the slowest communication in each direction)
    plus the Table 6 contention penalties on multi-core nodes.
    """

    receive_west: float
    receive_north: float
    send_east: float
    send_south: float
    contention: ContentionPenalty

    @property
    def per_tile_comm(self) -> float:
        """Total communication time charged per tile."""
        return (
            self.receive_west
            + self.receive_north
            + self.send_east
            + self.send_south
            + self.contention.total
        )


def stack_comm_costs(
    platform: Platform,
    spec: WavefrontSpec,
    grid: ProcessorGrid,
    core_mapping: CoreMapping | None = None,
) -> StackCommCosts:
    """The equation (r4) communication costs, with Table 6 contention."""
    ew_bytes = spec.message_size_ew(grid)
    ns_bytes = spec.message_size_ns(grid)
    costs_ew = CommunicationCosts.for_message(platform, ew_bytes, on_chip=False)
    costs_ns = CommunicationCosts.for_message(platform, ns_bytes, on_chip=False)
    contention = contention_penalty(platform, spec, grid, core_mapping)
    return StackCommCosts(
        receive_west=costs_ew.receive,
        receive_north=costs_ns.receive,
        send_east=costs_ew.send,
        send_south=costs_ns.send,
        contention=contention,
    )
