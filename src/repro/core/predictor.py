"""High-level analytic prediction API.

:func:`predict` evaluates the plug-and-play model: it takes a wavefront
application specification, a platform and a processor count, and returns a
:class:`Prediction` with the iteration time, the time per time step, the
total run time, and the breakdowns used by the Section 5 analyses.

This module is the *analytic core* of the unified backend architecture: the
``analytic-fast`` / ``analytic-exact`` backends
(:class:`repro.backends.analytic.AnalyticBackend`) wrap :func:`predict`, and
everything above them - the analysis studies, the validation harness and
the CLI - goes through the batch service layer
(:func:`repro.backends.service.predict_many`), which adds request
deduplication, backend selection (e.g. the discrete-event simulator) and
pool fan-out on top of the memoisation here.  Call :func:`predict` directly
when you specifically want the analytic model and its ``Prediction`` detail
object.

>>> from repro import predict, cray_xt4
>>> from repro.apps.workloads import chimaera_240cubed
>>> result = predict(chimaera_240cubed(), cray_xt4(), total_cores=4096)
>>> result.grid.total_processors
4096

Evaluations are cached: the model's inputs (spec, platform, grid, core
mapping) are all frozen value types, so :func:`predict` memoises on their
identity and parameter sweeps that revisit a configuration (e.g. the
partition-throughput study's repeated partition sizes) pay for the model
once.  :func:`clear_prediction_cache` resets the memo;
:func:`prediction_cache_info` exposes hit/miss statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.apps.base import WavefrontSpec
from repro.core.decomposition import CoreMapping, ProcessorGrid, decompose
from repro.core.loggp import Platform
from repro.core.model import (
    FILL_METHODS,
    IterationPrediction,
    iteration_prediction,
)
from repro.core.multicore import resolve_core_mapping
from repro.util.caching import call_with_unhashable_fallback, clear_registered_caches
from repro.util.units import safe_ratio, seconds_to_days, us_to_seconds

__all__ = [
    "Prediction",
    "predict",
    "clear_prediction_cache",
    "prediction_cache_info",
]


@dataclass(frozen=True)
class Prediction:
    """Execution-time prediction for a complete wavefront application run.

    All ``*_us`` fields are in microseconds; convenience properties convert
    to seconds and days (the units the paper's figures use).
    """

    spec: WavefrontSpec
    platform: Platform
    grid: ProcessorGrid
    core_mapping: CoreMapping
    iteration: IterationPrediction

    # -- per-iteration quantities --------------------------------------------------

    @property
    def time_per_iteration_us(self) -> float:
        return self.iteration.time_per_iteration

    @property
    def computation_per_iteration_us(self) -> float:
        return self.iteration.computation_per_iteration

    @property
    def communication_per_iteration_us(self) -> float:
        return self.iteration.communication_per_iteration

    @property
    def pipeline_fill_per_iteration_us(self) -> float:
        return self.iteration.pipeline_fill_time

    # -- aggregated quantities -----------------------------------------------------

    @property
    def iterations_per_time_step(self) -> int:
        return self.spec.iterations * self.spec.energy_groups

    @property
    def time_per_time_step_us(self) -> float:
        """Time for one time step: iterations x energy groups x Titer."""
        return self.time_per_iteration_us * self.iterations_per_time_step

    @property
    def total_time_us(self) -> float:
        """Time for the whole run (all time steps)."""
        return self.time_per_time_step_us * self.spec.time_steps

    @property
    def time_per_time_step_s(self) -> float:
        return us_to_seconds(self.time_per_time_step_us)

    @property
    def total_time_s(self) -> float:
        return us_to_seconds(self.total_time_us)

    @property
    def total_time_days(self) -> float:
        return seconds_to_days(self.total_time_s)

    @property
    def computation_fraction(self) -> float:
        """Fraction of the iteration time spent computing (Figure 11)."""
        return safe_ratio(self.computation_per_iteration_us, self.time_per_iteration_us)

    @property
    def communication_fraction(self) -> float:
        return 1.0 - self.computation_fraction

    def scaled_total_us(
        self, *, time_steps: Optional[int] = None, energy_groups: Optional[int] = None
    ) -> float:
        """Total time with an overridden number of time steps / energy groups.

        Lets the Section 5 studies re-use one prediction for several run
        lengths without re-evaluating the model.
        """
        steps = time_steps if time_steps is not None else self.spec.time_steps
        groups = energy_groups if energy_groups is not None else self.spec.energy_groups
        return (
            self.time_per_iteration_us * self.spec.iterations * groups * steps
        )

    def summary(self) -> dict[str, object]:
        """A flat dictionary of the headline numbers, for reports and tests."""
        return {
            "application": self.spec.name,
            "platform": self.platform.name,
            "processors": self.grid.total_processors,
            "grid": f"{self.grid.n}x{self.grid.m}",
            "cores_per_node": self.core_mapping.cores_per_node,
            "time_per_iteration_s": us_to_seconds(self.time_per_iteration_us),
            "time_per_time_step_s": self.time_per_time_step_s,
            "total_time_s": self.total_time_s,
            "total_time_days": self.total_time_days,
            "computation_fraction": self.computation_fraction,
            "communication_fraction": self.communication_fraction,
        }


def predict(
    spec: WavefrontSpec,
    platform: Platform,
    *,
    total_cores: Optional[int] = None,
    grid: Optional[ProcessorGrid] = None,
    core_mapping: Optional[CoreMapping] = None,
    method: str = "auto",
) -> Prediction:
    """Predict the execution time of ``spec`` on ``platform``.

    Exactly one of ``total_cores`` or ``grid`` must be given: ``total_cores``
    is decomposed into a near-square logical processor array (the paper's
    convention), while ``grid`` pins the decomposition explicitly.

    ``core_mapping`` overrides the ``Cx x Cy`` rectangle that each node's
    cores occupy; by default the paper's mapping for the platform's
    ``cores_per_node`` is used (1x2 for dual-core, 2x2 for quad-core, ...).

    ``method`` selects the ``StartP`` evaluator - ``"auto"``/``"fast"`` for
    the closed-form/period-folded fast path, ``"exact"`` for the reference
    grid walk (see :func:`repro.core.model.fill_times`).  Results are
    memoised on ``(spec, platform, grid, core_mapping, method)``.
    """
    if method not in FILL_METHODS:
        raise ValueError(f"method must be one of {FILL_METHODS}, got {method!r}")
    if (total_cores is None) == (grid is None):
        raise ValueError("specify exactly one of total_cores or grid")
    if grid is None:
        assert total_cores is not None
        if total_cores < 1:
            raise ValueError("total_cores must be positive")
        grid = decompose(total_cores)
    mapping = resolve_core_mapping(platform, core_mapping)
    # Unhashable spec/platform components (e.g. a custom non-wavefront model
    # holding a mutable object) fall back to uncached evaluation.
    return call_with_unhashable_fallback(
        _predict_cached, _predict_uncached, spec, platform, grid, mapping, method
    )


def _predict_uncached(
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    mapping: CoreMapping,
    method: str,
) -> Prediction:
    iteration = iteration_prediction(spec, platform, grid, mapping, method=method)
    return Prediction(
        spec=spec,
        platform=platform,
        grid=grid,
        core_mapping=mapping,
        iteration=iteration,
    )


_predict_cached = lru_cache(maxsize=4096)(_predict_uncached)


def clear_prediction_cache() -> None:
    """Drop every prediction-related memo in the process.

    Clears the :func:`predict` memo *and* every cache registered through
    :func:`repro.util.caching.register_cache_clearer` - the communication-
    cost memo (:func:`repro.core.comm.clear_comm_cost_cache`) and, when the
    backend layer has been imported, the simulator-result memo
    (:func:`repro.backends.simulator.clear_simulation_cache`).  After this
    call every backend re-evaluates from scratch, which is the invalidation
    contract ``tests/test_conformance.py`` pins down.
    """
    _predict_cached.cache_clear()
    clear_registered_caches()


def prediction_cache_info():
    """Hit/miss statistics of the :func:`predict` memo (``functools`` format)."""
    return _predict_cached.cache_info()
