"""The plug-and-play LogGP wavefront model (the paper's core contribution).

Layout
------

``loggp``
    LogGP platform parameter types (off-node, on-chip, node architecture).
``comm``
    Table 1 MPI send/receive/end-to-end cost equations and the equation (9)
    all-reduce model.
``decomposition``
    Problem sizes, logical processor grids, core-to-grid mappings.
``model``
    The Table 5 reusable model: ``StartP`` recurrence, ``Tdiagfill``,
    ``Tfullfill``, ``Tstack`` and the per-iteration time (equation (r5)).
``multicore``
    The Table 6 CMP extensions: on-chip/off-node classification and the
    shared-bus contention term.
``predictor``
    The high-level :func:`~repro.core.predictor.predict` API.
"""

from repro.core.comm import (
    ALLREDUCE_PAYLOAD_BYTES,
    CommunicationCosts,
    allreduce_time,
    clear_comm_cost_cache,
    receive_cost,
    send_cost,
    total_comm,
)
from repro.core.decomposition import (
    CoreMapping,
    Corner,
    ProblemSize,
    ProcessorGrid,
    decompose,
    default_core_mapping,
)
from repro.core.loggp import NodeArchitecture, OffNodeParams, OnChipParams, Platform
from repro.core.model import (
    FILL_METHODS,
    FillTimes,
    IterationPrediction,
    StackTime,
    fill_times,
    iteration_prediction,
    stack_time,
)
from repro.core.multicore import (
    ContentionPenalty,
    contention_penalty,
    fill_step_costs,
    interference_term,
    stack_comm_costs,
)
from repro.core.predictor import (
    Prediction,
    clear_prediction_cache,
    predict,
    prediction_cache_info,
)

__all__ = [
    "ALLREDUCE_PAYLOAD_BYTES",
    "CommunicationCosts",
    "allreduce_time",
    "clear_comm_cost_cache",
    "receive_cost",
    "send_cost",
    "total_comm",
    "CoreMapping",
    "Corner",
    "ProblemSize",
    "ProcessorGrid",
    "decompose",
    "default_core_mapping",
    "NodeArchitecture",
    "OffNodeParams",
    "OnChipParams",
    "Platform",
    "FILL_METHODS",
    "FillTimes",
    "IterationPrediction",
    "StackTime",
    "fill_times",
    "iteration_prediction",
    "stack_time",
    "ContentionPenalty",
    "contention_penalty",
    "fill_step_costs",
    "interference_term",
    "stack_comm_costs",
    "Prediction",
    "clear_prediction_cache",
    "predict",
    "prediction_cache_info",
]
