"""Heterogeneous-platform value types: speed profiles and noise models.

The paper's plug-and-play model (and everything built on it) treats the
machine as a homogeneous set of ranks: one LogGP parameterisation, one
compute speed, no background interference.  Real machines degrade - a node
runs hot and throttles, the OS steals cycles, a rack sits behind a slower
switch - and the value of a predictive model grows with the scenarios it can
express.  This module defines the *value types* that describe such degraded
machines; they are attached to :class:`~repro.core.loggp.Platform` and
consumed by both the analytic evaluators (:mod:`repro.core.model`) and the
discrete-event simulator (:mod:`repro.simulator`):

* :class:`SpeedProfile` - per-node compute-speed multipliers (straggler /
  slow-node scenarios such as "one node at half speed");
* :class:`NoiseModel` and its implementations :class:`NoNoise`,
  :class:`FixedQuantumNoise` (deterministic OS-jitter duty cycle) and
  :class:`SampledNoise` (multiplicative jitter drawn from the simulator's
  per-rank :class:`random.Random` streams).

All types are frozen dataclasses with hashable fields, so heterogeneous
platforms keep working with every memoisation layer (distinct descriptions
get distinct cache entries).

The node-index convention shared by the analytic model and the simulator
also lives here (:func:`node_grid_shape`, :func:`node_index_of`): nodes tile
the logical processor array in ``Cx x Cy`` rectangles, numbered row-major
over node columns and rows.  Slow-node indices in a :class:`SpeedProfile`
refer to exactly these indices, which is what makes a straggler scenario
mean the same ranks to every backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.decomposition import CoreMapping, ProcessorGrid

__all__ = [
    "SlowdownWindow",
    "SpeedProfile",
    "NoiseModel",
    "NoNoise",
    "FixedQuantumNoise",
    "SampledNoise",
    "node_grid_shape",
    "node_index_of",
    "node_count",
    "chip_index_of",
    "diagonal_multipliers",
    "column_multipliers",
    "max_multiplier",
]


# ---------------------------------------------------------------------------
# Speed profiles
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SlowdownWindow:
    """A time-varying slowdown: a work-time multiplier active for a while.

    Models transient degradation - a thermal-throttling episode, a burst of
    contention from a co-scheduled job, a rack losing a fan - as a
    piecewise-constant multiplier on simulated time: compute starting
    within ``[start_us, end_us)`` takes ``factor`` times longer.  An empty
    ``nodes`` tuple applies the window to every node; otherwise only the
    listed node indices (the convention of :func:`node_index_of`) slow
    down.

    Windows are sampled at compute-operation granularity (the multiplier in
    force when an operation *starts* applies to the whole operation), which
    is why they are a simulator-only scenario: the analytic fast path
    declares them unsupported and the event engine takes over.

    >>> window = SlowdownWindow(1000.0, 2000.0, 2.0)
    >>> window.factor_at(0, 1500.0), window.factor_at(0, 2500.0)
    (2.0, 1.0)
    """

    start_us: float
    end_us: float
    factor: float
    nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise ValueError("window start_us must be non-negative")
        if self.end_us <= self.start_us:
            raise ValueError("window end_us must exceed start_us")
        if self.factor <= 0:
            raise ValueError("window factor must be positive")
        if any(node < 0 for node in self.nodes):
            raise ValueError("window node indices must be non-negative")
        object.__setattr__(self, "nodes", tuple(sorted(set(self.nodes))))

    @property
    def is_trivial(self) -> bool:
        """True when the window never changes any compute time."""
        return self.factor == 1.0  # repro: noqa[RPR004] bit-for-bit homogeneous-limit contract requires exact 1.0

    def factor_at(self, node: int, time_us: float) -> float:
        """The multiplier this window contributes at ``time_us`` on ``node``."""
        if self.nodes and node not in self.nodes:
            return 1.0
        if self.start_us <= time_us < self.end_us:
            return self.factor
        return 1.0


@dataclass(frozen=True)
class SpeedProfile:
    """Per-node compute-speed multipliers (work-*time* multipliers).

    ``baseline`` scales every node's work time (1.0 = as calibrated);
    ``slow_nodes`` lists the node indices additionally scaled by
    ``slowdown``.  A node "running at 0.5x speed" therefore has
    ``slowdown=2.0`` - its work takes twice as long.  Node indices follow
    the shared convention of :func:`node_index_of`; indices beyond the
    machine actually built for a given grid simply select no node (so one
    profile can be swept across several machine sizes).

    ``windows`` adds *time-varying* slowdowns on top of the static
    per-node multipliers: each :class:`SlowdownWindow` multiplies the
    work time of compute starting inside its ``[start_us, end_us)`` span
    (overlapping windows compound multiplicatively).

    >>> profile = SpeedProfile.stragglers(2, 2.0)
    >>> profile.multiplier_for_node(0), profile.multiplier_for_node(5)
    (2.0, 1.0)
    >>> SpeedProfile().is_trivial, profile.is_trivial
    (True, False)
    >>> windowed = SpeedProfile(windows=(SlowdownWindow(0.0, 100.0, 3.0),))
    >>> windowed.multiplier_at(0, 50.0), windowed.multiplier_at(0, 200.0)
    (3.0, 1.0)
    """

    baseline: float = 1.0
    slowdown: float = 1.0
    slow_nodes: Tuple[int, ...] = ()
    windows: Tuple[SlowdownWindow, ...] = ()

    def __post_init__(self) -> None:
        if self.baseline <= 0 or self.slowdown <= 0:
            raise ValueError("speed multipliers must be positive")
        if any(node < 0 for node in self.slow_nodes):
            raise ValueError("slow node indices must be non-negative")
        object.__setattr__(self, "slow_nodes", tuple(sorted(set(self.slow_nodes))))
        object.__setattr__(self, "windows", tuple(self.windows))

    @classmethod
    def stragglers(cls, count: int, slowdown: float, baseline: float = 1.0) -> "SpeedProfile":
        """The canonical straggler scenario: nodes ``0..count-1`` slowed down."""
        if count < 0:
            raise ValueError("straggler count must be non-negative")
        return cls(baseline=baseline, slowdown=slowdown, slow_nodes=tuple(range(count)))

    @property
    def is_trivial(self) -> bool:
        """True when every node's multiplier is exactly 1.0.

        The homogeneous limit: attaching a trivial profile to a platform
        must not change any prediction, bit for bit.
        """
        static_trivial = self.baseline == 1.0 and (self.slowdown == 1.0 or not self.slow_nodes)  # repro: noqa[RPR004] bit-for-bit homogeneous-limit contract requires exact 1.0
        return static_trivial and not self.has_windows

    @property
    def has_windows(self) -> bool:
        """True when any window can actually change a compute time."""
        return any(not window.is_trivial for window in self.windows)

    def multiplier_for_node(self, node: int) -> float:
        """The *static* work-time multiplier of node ``node`` (no windows)."""
        if self.slow_nodes and node in self.slow_nodes:
            return self.baseline * self.slowdown
        return self.baseline

    def window_factor(self, node: int, time_us: float) -> float:
        """The combined factor of every window active at ``time_us``.

        Exactly 1.0 when no window covers the instant, so the simulator can
        apply it on top of the static multiplier without disturbing the
        homogeneous limit bit for bit.
        """
        factor = 1.0
        for window in self.windows:
            contribution = window.factor_at(node, time_us)
            if contribution != 1.0:  # repro: noqa[RPR004] inactive windows contribute exactly 1.0 (bit-for-bit identity)
                factor *= contribution
        return factor

    def multiplier_at(self, node: int, time_us: float) -> float:
        """The full work-time multiplier of ``node`` at simulated time
        ``time_us``: the static per-node multiplier times every active
        window's factor."""
        return self.multiplier_for_node(node) * self.window_factor(node, time_us)


# ---------------------------------------------------------------------------
# Node layout convention (shared by model and simulator)
# ---------------------------------------------------------------------------

def node_grid_shape(grid: ProcessorGrid, mapping: CoreMapping) -> Tuple[int, int]:
    """``(nodes_per_row, nodes_per_col)``: node rectangles tiling the grid."""
    nodes_per_row = -(-grid.n // mapping.cx)  # ceil division
    nodes_per_col = -(-grid.m // mapping.cy)
    return nodes_per_row, nodes_per_col


def node_index_of(grid: ProcessorGrid, mapping: CoreMapping, i: int, j: int) -> int:
    """Node index of grid position ``(i, j)`` (1-based coordinates).

    This is the single definition of node numbering: row-major over the
    ``Cx x Cy`` node rectangles, matching
    :meth:`repro.simulator.wavefront.WavefrontSimulator.rank_to_node`.
    """
    nodes_per_row, _ = node_grid_shape(grid, mapping)
    node_col, node_row = mapping.node_of(i, j)
    return node_row * nodes_per_row + node_col


def node_count(grid: ProcessorGrid, mapping: CoreMapping) -> int:
    """Number of nodes the grid occupies."""
    nodes_per_row, nodes_per_col = node_grid_shape(grid, mapping)
    return nodes_per_row * nodes_per_col


def chip_index_of(grid: ProcessorGrid, mapping: CoreMapping, i: int, j: int) -> int:
    """Chip index of grid position ``(i, j)``: the node convention, refined.

    Row-major over the chip rectangles, exactly like :func:`node_index_of`
    over the node rectangles; on mappings without a chip subdivision the
    chip rectangle equals the node rectangle and the two numberings
    coincide.
    """
    chips_per_row = -(-grid.n // mapping.effective_chip_cx)  # ceil division
    chip_col, chip_row = mapping.chip_of(i, j)
    return chip_row * chips_per_row + chip_col


def _slow_rectangles(
    profile: SpeedProfile, grid: ProcessorGrid, mapping: CoreMapping
) -> List[Tuple[int, int, int, int]]:
    """``(i_lo, i_hi, j_lo, j_hi)`` grid extents of each slow node present."""
    nodes_per_row, nodes_per_col = node_grid_shape(grid, mapping)
    rectangles = []
    for node in profile.slow_nodes:
        node_row, node_col = divmod(node, nodes_per_row)
        if node_row >= nodes_per_col:
            continue  # profile index beyond this machine: selects nothing
        i_lo = node_col * mapping.cx + 1
        j_lo = node_row * mapping.cy + 1
        rectangles.append(
            (i_lo, min(grid.n, i_lo + mapping.cx - 1), j_lo, min(grid.m, j_lo + mapping.cy - 1))
        )
    return rectangles


def diagonal_multipliers(
    profile: SpeedProfile, grid: ProcessorGrid, mapping: CoreMapping
) -> List[float]:
    """Per-wavefront-diagonal *maximum* work-time multiplier.

    Diagonal ``d`` holds the positions at Manhattan distance ``d`` from the
    ``(1, 1)`` corner; its multiplier is the slowest rank's, which is what
    governs the wavefront's progress across that diagonal (the bounded-
    heterogeneity correction of :func:`repro.core.model.fill_times`).  Runs
    in O(n + m + slow nodes), not O(n * m).
    """
    length = grid.n + grid.m - 1
    slow = profile.baseline * profile.slowdown
    if slow <= profile.baseline:
        # Slow nodes are not slower than the baseline: the per-diagonal
        # maximum is the baseline everywhere a baseline rank exists, which
        # (slow nodes being rectangles, never covering a full diagonal of a
        # grid larger than one node) is every diagonal unless the whole
        # machine is slow.  Handle the general case with a dense pass.
        return _diagonal_multipliers_dense(profile, grid, mapping)
    marks = [0] * (length + 1)
    for i_lo, i_hi, j_lo, j_hi in _slow_rectangles(profile, grid, mapping):
        d_lo = (i_lo - 1) + (j_lo - 1)
        d_hi = (i_hi - 1) + (j_hi - 1)
        marks[d_lo] += 1
        marks[d_hi + 1] -= 1
    multipliers = []
    covered = 0
    for d in range(length):
        covered += marks[d]
        multipliers.append(slow if covered > 0 else profile.baseline)
    return multipliers


def _diagonal_multipliers_dense(
    profile: SpeedProfile, grid: ProcessorGrid, mapping: CoreMapping
) -> List[float]:
    """O(n*m) reference for speed-up profiles (slowdown < 1)."""
    length = grid.n + grid.m - 1
    multipliers = [0.0] * length
    for i, j in grid.positions():
        mult = profile.multiplier_for_node(node_index_of(grid, mapping, i, j))
        d = (i - 1) + (j - 1)
        if mult > multipliers[d]:
            multipliers[d] = mult
    return multipliers


def column_multipliers(
    profile: SpeedProfile, grid: ProcessorGrid, mapping: CoreMapping
) -> List[float]:
    """Work-time multiplier at positions ``(1, j)`` for ``j = 1..m``.

    The diagonal-fill path of the ``StartP`` recurrence descends column 1,
    so its heterogeneity correction uses the multipliers actually on that
    column (not the per-diagonal maxima).
    """
    nodes_per_row, _ = node_grid_shape(grid, mapping)
    multipliers = []
    for j in range(1, grid.m + 1):
        node_row = (j - 1) // mapping.cy
        multipliers.append(profile.multiplier_for_node(node_row * nodes_per_row))
    return multipliers


def max_multiplier(
    profile: SpeedProfile, grid: ProcessorGrid, mapping: CoreMapping
) -> float:
    """The slowest multiplier present anywhere on the machine.

    The stack-processing phase (equation (r4)) runs every rank in lock-step
    with its neighbours, so in steady state the whole machine advances at
    the slowest rank's rate.
    """
    total = node_count(grid, mapping)
    candidates = [profile.baseline]
    candidates.extend(
        profile.baseline * profile.slowdown
        for node in profile.slow_nodes
        if node < total
    )
    return max(candidates)


# ---------------------------------------------------------------------------
# Noise models
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NoiseModel:
    """Base class of background-interference models.

    A noise model stretches each tile's compute time by a per-tile factor.
    Deterministic models (``is_stochastic`` False) use the same factor every
    tile; stochastic models draw it from the per-rank
    :class:`random.Random` streams the simulator already owns (see
    :meth:`repro.simulator.wavefront.WavefrontSimulator.rank_jitter_stream`),
    so seeded runs stay bit-identical.  The analytic model applies the
    *mean* inflation factor to the per-tile work ``W``.
    """

    @property
    def is_null(self) -> bool:
        """True when the model never changes any compute time."""
        return self.mean_inflation() == 1.0 and not self.is_stochastic  # repro: noqa[RPR004] null model must be exactly 1.0 (bit-for-bit identity)

    @property
    def is_stochastic(self) -> bool:
        return False

    def mean_inflation(self) -> float:
        """Expected multiplicative stretch of a compute operation."""
        return 1.0

    def factor(self, rng) -> float:
        """Per-tile work multiplier (``rng`` is used by stochastic models)."""
        return 1.0


@dataclass(frozen=True)
class NoNoise(NoiseModel):
    """The quiet machine: the paper's noise-free setting.

    >>> NoNoise().is_null
    True
    """


@dataclass(frozen=True)
class FixedQuantumNoise(NoiseModel):
    """Deterministic OS jitter: a fixed quantum stolen every period.

    Models a daemon/OS tick that preempts the application for
    ``quantum_us`` out of every ``period_us`` of compute, stretching every
    compute operation by the duty-cycle factor ``1 + quantum/period``
    deterministically (no random stream involved).

    >>> FixedQuantumNoise(quantum_us=50.0, period_us=1000.0).mean_inflation()
    1.05
    """

    quantum_us: float = 0.0
    period_us: float = 1000.0

    def __post_init__(self) -> None:
        if self.quantum_us < 0:
            raise ValueError("quantum_us must be non-negative")
        if self.period_us <= 0:
            raise ValueError("period_us must be positive")

    def mean_inflation(self) -> float:
        return 1.0 + self.quantum_us / self.period_us

    def factor(self, rng) -> float:
        return self.mean_inflation()


@dataclass(frozen=True)
class SampledNoise(NoiseModel):
    """Multiplicative jitter sampled per tile from a per-rank stream.

    Each tile's work is scaled by ``1 + amplitude * U`` with ``U`` uniform
    on ``[0, 1)`` - exactly the simulator's historical ``compute_noise``
    semantics, now expressible as a platform property.  The analytic model
    uses the mean factor ``1 + amplitude/2``.

    >>> SampledNoise(0.1).is_stochastic
    True
    >>> SampledNoise(0.1).mean_inflation()
    1.05
    """

    amplitude: float = 0.0

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError("amplitude must be non-negative")

    @property
    def is_stochastic(self) -> bool:
        return self.amplitude > 0.0

    def mean_inflation(self) -> float:
        return 1.0 + self.amplitude / 2.0

    def factor(self, rng) -> float:
        if self.amplitude == 0.0:  # repro: noqa[RPR004] exact-zero amplitude skips the rng draw so the stream stays aligned
            return 1.0
        return 1.0 + self.amplitude * rng.random()
