"""Vectorized struct-of-arrays evaluation of the plug-and-play model.

:func:`batch_point_values` prices a whole design matrix - a list of resolved
``(spec, platform, grid, core_mapping)`` configurations - in one pass, with
results numerically equivalent (<= 1e-9 relative) to evaluating
:func:`repro.core.model.iteration_prediction` with ``method="fast"`` point by
point.  The speedup comes from amortising the Python interpreter: the batch
is grouped by ``(platform, core_mapping)`` and every group is evaluated as a
handful of elementwise operations over *arrays* of per-point quantities
(``W``, ``Wpre``, message sizes, grid shapes) instead of thousands of scalar
calls.

Array backend
-------------

Operations run on numpy arrays when numpy is importable and on a tiny
pure-stdlib vector type (:class:`_PyVector`, plain Python lists with
operator overloading) otherwise.  Both paths execute the same evaluator
code; the stdlib path is correct but much slower, so the first batch
evaluated on it logs a one-line warning (see :func:`warn_on_fallback` and
the optional-numpy policy in the README).

What vectorizes, what falls back
--------------------------------

Vectorized exactly (same elementwise operation order as the scalar code,
so homogeneous-platform results are bit-identical):

* the closed-form ``StartP`` path for position-independent costs;
* the period-folded ``StartP`` path for multi-core periodic costs,
  including the per-point linearity verification (sub-grouped by grid
  shape so the fold geometry stays scalar);
* the Table 1 communication-cost kernels at all three hop levels, the
  stack costs with Table 6 bus contention, and the all-reduce
  non-wavefront term (equation (9));
* noise mean-inflation and checkpoint-dump inflation of ``W``/``Wpre``
  (scalar factors per group), plus the per-point bounded expected-rework
  correction of fault-model platforms (see :mod:`repro.core.faults`).

Per-point scalar fallbacks (delegating to the scalar model, so results
match by construction):

* grid points whose fold linearity check fails (rare; the exact walk);
* the bounded per-diagonal heterogeneity correction of non-trivial
  :class:`~repro.core.hetero.SpeedProfile` platforms;
* :class:`~repro.apps.base.StencilNonWavefront` and custom
  ``NonWavefrontModel`` implementations;
* configurations with unhashable (subclassed) platforms or mappings.

>>> from repro.apps.workloads import lu_class
>>> from repro.platforms import cray_xt4
>>> from repro.core.decomposition import decompose
>>> from repro.core.multicore import resolve_core_mapping
>>> from repro.core.model import iteration_prediction
>>> spec, platform = lu_class("A"), cray_xt4()
>>> grid = decompose(16)
>>> mapping = resolve_core_mapping(platform, None)
>>> [point] = batch_point_values([(spec, platform, grid, mapping)])
>>> reference = iteration_prediction(spec, platform, grid, mapping, method="fast")
>>> abs(point.time_per_iteration - reference.time_per_iteration) <= (
...     1e-9 * reference.time_per_iteration)
True
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.apps.base import AllReduceNonWavefront, NoNonWavefront, WavefrontSpec
from repro.core.decomposition import CoreMapping, ProcessorGrid
from repro.core.hetero import max_multiplier
from repro.core.loggp import OffNodeParams, OnChipParams, Platform
from repro.core.faults import expected_rework_us, rework_guard
from repro.core.model import (
    _FOLD_BASE_PERIODS,
    _FOLD_REL_TOL,
    _count_residue,
    _fault_inflation,
    _fill_cost_table,
    _fill_heterogeneity_extras,
    _require_analytic_supported,
    _startp_exact,
    iteration_prediction,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the container always has numpy
    _np = None

__all__ = [
    "PointValues",
    "batch_point_values",
    "have_numpy",
    "warn_on_fallback",
    "reset_fallback_warning",
]

_LOGGER = logging.getLogger(__name__)

#: One resolved configuration: what ``PredictionRequest.resolve()`` returns.
_Config = Tuple[WavefrontSpec, Platform, ProcessorGrid, CoreMapping]


def have_numpy() -> bool:
    """True when the numpy array backend is active (vs the stdlib fallback)."""
    return _np is not None


_fallback_warned = False


def warn_on_fallback() -> None:
    """Log once per process when batches run on the pure-stdlib path.

    The stdlib fallback produces identical results but is much slower, so
    benchmark numbers taken on it are not comparable with numpy runs; the
    warning keeps that visible (the ISSUE's "no silent apples-to-oranges"
    policy, see the README's optional-numpy section).
    """
    global _fallback_warned
    if _np is None and not _fallback_warned:
        _fallback_warned = True
        _LOGGER.warning(
            "numpy is not importable; analytic-vec is evaluating batches on "
            "the pure-stdlib fallback path (identical results, much slower)"
        )


def reset_fallback_warning() -> None:
    """Re-arm :func:`warn_on_fallback` (used by the cache-clearing contract)."""
    global _fallback_warned
    _fallback_warned = False


# ---------------------------------------------------------------------------
# Array backend: numpy when importable, a list-backed vector otherwise
# ---------------------------------------------------------------------------

class _PyVector:
    """Pure-stdlib float vector with elementwise operator overloading.

    Only what the evaluator needs: ``+ - * /`` against scalars and vectors
    (in the same per-element operation order as numpy, so both paths give
    bit-identical results) and comparisons returning plain bool lists.
    """

    __slots__ = ("values",)

    def __init__(self, values) -> None:
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)

    def _other(self, other) -> list:
        if isinstance(other, _PyVector):
            return other.values
        return [other] * len(self.values)

    def __add__(self, other) -> "_PyVector":
        return _PyVector([a + b for a, b in zip(self.values, self._other(other))])

    __radd__ = __add__

    def __sub__(self, other) -> "_PyVector":
        return _PyVector([a - b for a, b in zip(self.values, self._other(other))])

    def __rsub__(self, other) -> "_PyVector":
        return _PyVector([b - a for a, b in zip(self.values, self._other(other))])

    def __mul__(self, other) -> "_PyVector":
        return _PyVector([a * b for a, b in zip(self.values, self._other(other))])

    __rmul__ = __mul__

    def __truediv__(self, other) -> "_PyVector":
        return _PyVector([a / b for a, b in zip(self.values, self._other(other))])

    def __rtruediv__(self, other) -> "_PyVector":
        return _PyVector([b / a for a, b in zip(self.values, self._other(other))])

    def __le__(self, other) -> list:
        return [a <= b for a, b in zip(self.values, self._other(other))]

    def __lt__(self, other) -> list:
        return [a < b for a, b in zip(self.values, self._other(other))]

    def __ge__(self, other) -> list:
        return [a >= b for a, b in zip(self.values, self._other(other))]

    def __gt__(self, other) -> list:
        return [a > b for a, b in zip(self.values, self._other(other))]


def _vector(values):
    """A float vector from a list of floats, on the active array backend."""
    if _np is not None:
        return _np.asarray(values, dtype=float)
    return _PyVector(values)


def _where(mask, a, b):
    """Elementwise ``a if mask else b`` with scalar broadcasting."""
    if _np is not None:
        return _np.where(_np.asarray(mask), a, b)
    size = len(mask)
    left = a.values if isinstance(a, _PyVector) else [a] * size
    right = b.values if isinstance(b, _PyVector) else [b] * size
    return _PyVector(
        [x if flag else y for flag, x, y in zip(mask, left, right)]
    )


def _maximum(a, b):
    """Elementwise maximum; ``a if a >= b else b``, the recurrence's tie rule."""
    if _np is not None:
        return _np.maximum(a, b)
    if not isinstance(a, _PyVector):
        a, b = b, a
    right = b.values if isinstance(b, _PyVector) else [b] * len(a.values)
    return _PyVector([x if x >= y else y for x, y in zip(a.values, right)])


def _minimum(a, b):
    """Elementwise minimum (for ``min(cores_per_node, P)`` in equation (9))."""
    if _np is not None:
        return _np.minimum(a, b)
    if not isinstance(a, _PyVector):
        a, b = b, a
    right = b.values if isinstance(b, _PyVector) else [b] * len(a.values)
    return _PyVector([x if x <= y else y for x, y in zip(a.values, right)])


def _log2(a):
    if _np is not None:
        return _np.log2(a)
    return _PyVector([math.log2(x) for x in a.values])


def _absolute(a):
    if _np is not None:
        return _np.abs(a)
    return _PyVector([abs(x) for x in a.values])


def _tolist(a) -> List[float]:
    if _np is not None:
        return [float(x) for x in a.tolist()]
    return list(a.values)


def _masklist(mask) -> List[bool]:
    if isinstance(mask, list):
        return mask
    return [bool(flag) for flag in mask.tolist()]


# ---------------------------------------------------------------------------
# Vector communication-cost kernels (Table 1, same operation order as
# repro.core.comm so homogeneous results are bit-identical)
# ---------------------------------------------------------------------------

def _v_total_off(params: OffNodeParams, size):
    base = params.overhead + size * params.gap_per_byte + params.latency + params.overhead
    eager = size <= float(params.eager_limit)
    return _where(eager, base, base + params.handshake_time + params.overhead)


def _v_send_off(params: OffNodeParams, size):
    eager = size <= float(params.eager_limit)
    return _where(eager, params.overhead, params.overhead + params.handshake_time)


def _v_receive_off(params: OffNodeParams, size):
    eager = size <= float(params.eager_limit)
    rendezvous = (
        params.latency
        + params.overhead
        + size * params.gap_per_byte
        + params.latency
        + params.overhead
    )
    return _where(eager, params.overhead, rendezvous)


def _v_total_chip(params: OnChipParams, size):
    eager = size <= float(params.eager_limit)
    small = params.copy_overhead + size * params.gap_per_byte_copy + params.copy_overhead
    large = params.overhead + size * params.gap_per_byte_dma + params.copy_overhead
    return _where(eager, small, large)


def _v_send_chip(params: OnChipParams, size):
    eager = size <= float(params.eager_limit)
    return _where(eager, params.copy_overhead, params.overhead)


def _v_receive_chip(params: OnChipParams, size):
    eager = size <= float(params.eager_limit)
    return _where(
        eager,
        params.copy_overhead,
        size * params.gap_per_byte_dma + params.copy_overhead,
    )


def _hop_params(platform: Platform, level: str):
    """The parameter bundle and sub-model of one hop level (comm._level_params)."""
    if level == "machine":
        return platform.off_node, None
    if level == "node" and platform.intra_node is not None:
        return platform.intra_node, None
    if platform.on_chip is None:
        raise ValueError(
            f"platform {platform.name!r} does not define on-chip communication parameters"
        )
    return None, platform.on_chip


def _v_cost(platform: Platform, level: str, size, kind: str):
    """One vectorized Table 1 cost (``kind`` in total/send/receive) at ``level``."""
    off_params, chip_params = _hop_params(platform, level)
    if off_params is not None:
        if kind == "total":
            return _v_total_off(off_params, size)
        if kind == "send":
            return _v_send_off(off_params, size)
        return _v_receive_off(off_params, size)
    if kind == "total":
        return _v_total_chip(chip_params, size)
    if kind == "send":
        return _v_send_chip(chip_params, size)
    return _v_receive_chip(chip_params, size)


def _v_fill_table(
    platform: Platform,
    mapping: CoreMapping,
    multicore: bool,
    ew,
    ns,
) -> Tuple[list, int, int]:
    """Vectorized per-residue-class fill-cost table (model._fill_cost_table).

    Entries are ``(TotalCommE, ReceiveN, SendE, TotalCommS)`` vectors over
    the batch, indexed ``[i % Cx][j % Cy]``.
    """
    cx, cy = (mapping.cx, mapping.cy) if multicore else (1, 1)
    table = []
    for im in range(cx):
        i = im if im >= 1 else cx
        column = []
        for jm in range(cy):
            j = jm if jm >= 1 else cy
            if not multicore:
                entry = (
                    _v_total_off(platform.off_node, ew),
                    _v_receive_off(platform.off_node, ns),
                    _v_send_off(platform.off_node, ew),
                    _v_total_off(platform.off_node, ns),
                )
            else:
                entry = (
                    _v_cost(platform, mapping.comm_from_west_level(i, j), ew, "total"),
                    _v_cost(platform, mapping.receive_north_level(i, j), ns, "receive"),
                    _v_cost(platform, mapping.send_east_level(i, j), ew, "send"),
                    _v_cost(platform, mapping.send_south_level(i, j), ns, "total"),
                )
            column.append(entry)
        table.append(column)
    return table, cx, cy


# ---------------------------------------------------------------------------
# Vector StartP evaluators (model._startp_* over a batch dimension)
# ---------------------------------------------------------------------------

def _v_startp_homogeneous(n_list, m_list, w, wpre, entry):
    """Closed-form ``StartP`` corners, vectorized over grid shapes."""
    comm_e, recv_n, send_e, comm_s = entry
    n_vec = _vector([float(n) for n in n_list])
    m_vec = _vector([float(m) for m in m_list])
    send_e_eff = _where([n > 1 for n in n_list], send_e, 0.0)
    south = w + send_e_eff + comm_s
    tdiag = wpre + (m_vec - 1.0) * south
    tfull_single_column = wpre + (n_vec - 1.0) * (w + comm_e)
    tfull_general = tdiag + (n_vec - 1.0) * (w + comm_e + recv_n)
    tfull = _where([m == 1 for m in m_list], tfull_single_column, tfull_general)
    return tdiag, tfull


def _v_startp_exact(n: int, m: int, w, wpre, table, cx: int, cy: int):
    """The full-grid recurrence with vector-valued per-tile costs.

    ``n``/``m`` are scalars (the batch is sub-grouped by grid shape); every
    grid step performs one elementwise operation over the batch.
    """
    rows = [[table[i % cx][jm] for i in range(1, n + 1)] for jm in range(cy)]

    prev: list = [None] * n
    prev[0] = wpre
    row1 = rows[1 % cy]
    for i in range(2, n + 1):
        prev[i - 1] = prev[i - 2] + w + row1[i - 1][0]

    for j in range(2, m + 1):
        row = rows[j % cy]
        cur: list = [None] * n
        send_e_first = row[0][2] if n > 1 else 0.0
        cur[0] = prev[0] + w + send_e_first + row[0][3]
        for i in range(2, n + 1):
            comm_e, recv_n, send_e, comm_s = row[i - 1]
            west = cur[i - 2] + w + comm_e + recv_n
            north = prev[i - 1] + w + send_e + comm_s
            cur[i - 1] = _maximum(west, north)
        prev = cur

    return prev[0], prev[n - 1]


def _v_startp_cells(
    big_n: int, big_m: int, w, wpre, table, cx: int, cy: int, cells
):
    """One (big_n, big_m) walk harvesting ``StartP(i, j)`` at ``cells``.

    The recurrence value at ``(i, j)`` depends only on the rectangle below
    and left of it, so the corner values of every smaller ``(i, j)`` grid
    can be read off one big walk - provided every requested ``i`` agrees
    with ``big_n`` on the ``n > 1`` first-column guard (callers check).
    This cuts the period-folded path's six corner walks down to one.
    """
    wanted_rows: Dict[int, List[int]] = {}
    for i, j in cells:
        wanted_rows.setdefault(j, []).append(i)
    out = {}
    rows = [[table[i % cx][jm] for i in range(1, big_n + 1)] for jm in range(cy)]

    prev: list = [None] * big_n
    prev[0] = wpre
    row1 = rows[1 % cy]
    for i in range(2, big_n + 1):
        prev[i - 1] = prev[i - 2] + w + row1[i - 1][0]
    for i in wanted_rows.get(1, ()):
        out[(i, 1)] = prev[i - 1]

    for j in range(2, big_m + 1):
        row = rows[j % cy]
        cur: list = [None] * big_n
        send_e_first = row[0][2] if big_n > 1 else 0.0
        cur[0] = prev[0] + w + send_e_first + row[0][3]
        for i in range(2, big_n + 1):
            comm_e, recv_n, send_e, comm_s = row[i - 1]
            west = cur[i - 2] + w + comm_e + recv_n
            north = prev[i - 1] + w + send_e + comm_s
            cur[i - 1] = _maximum(west, north)
        prev = cur
        for i in wanted_rows.get(j, ()):
            out[(i, j)] = prev[i - 1]
    return out


def _v_startp_diag(n: int, m: int, w, wpre, table, cx: int, cy: int):
    """``StartP(1, m)`` in closed form (model._startp_diag), vectorized."""
    send_e = table[1 % cx][0][2] if n > 1 else 0.0
    total = wpre
    for jm in range(cy):
        count = _count_residue(2, m, cy, jm)
        if count:
            total = total + count * (w + send_e + table[1 % cx][jm][3])
    return total


def _v_startp_periodic(n: int, m: int, w, wpre, table, cx: int, cy: int):
    """Period-folded ``StartP`` over a batch; per-point linearity verification.

    Returns ``(tdiag, tfull, ok)`` where ``ok`` flags the points whose
    linearity checks passed (the rest need the scalar exact walk), or
    ``None`` when the fold does not apply to the whole sub-group (too small
    to fold, or folding costs more than the exact walk) - exactly the
    decisions of :func:`repro.core.model._startp_periodic`.
    """
    base = _FOLD_BASE_PERIODS
    n0 = n if n <= (base + 2) * cx else base * cx + (n - base * cx) % cx
    m0 = m if m <= (base + 2) * cy else base * cy + (m - base * cy) % cy
    kx = (n - n0) // cx
    ky = (m - m0) // cy
    if kx == 0 and ky == 0:
        return None
    evaluations = 1 + (2 if kx else 0) + (2 if ky else 0) + (1 if kx and ky else 0)
    if evaluations * (n0 + 2 * cx) * (m0 + 2 * cy) >= n * m:
        return None

    if kx == 0 or n0 > 1:
        # Every corner value is a cell of one big walk (identical op order),
        # so harvest all of them from a single pass over the largest grid.
        cells = [(n0, m0)]
        if kx:
            cells += [(n0 + cx, m0), (n0 + 2 * cx, m0)]
        if ky:
            cells += [(n0, m0 + cy), (n0, m0 + 2 * cy)]
        if kx and ky:
            cells.append((n0 + cx, m0 + cy))
        big_n = n0 + 2 * cx if kx else n0
        big_m = m0 + 2 * cy if ky else m0
        harvested = _v_startp_cells(big_n, big_m, w, wpre, table, cx, cy, cells)

        def corner(a: int, b: int):
            return harvested[(n0 + a * cx, m0 + b * cy)]

    else:
        # n0 == 1 with kx > 0: corners disagree on the first-column
        # ``n > 1`` guard, so each needs its own exact walk (rare and tiny).
        def corner(a: int, b: int):
            return _v_startp_exact(
                n0 + a * cx, m0 + b * cy, w, wpre, table, cx, cy
            )[1]

    f00 = corner(0, 0)
    tolerance = _FOLD_REL_TOL * _maximum(_absolute(f00), 1.0)
    ok = [True] * len(_tolist(f00))
    dx = dy = 0.0
    if kx:
        f10 = corner(1, 0)
        dx = f10 - f00
        bad = _masklist(_absolute((corner(2, 0) - f10) - dx) > tolerance)
        ok = [flag and not b for flag, b in zip(ok, bad)]
    if ky:
        f01 = corner(0, 1)
        dy = f01 - f00
        bad = _masklist(_absolute((corner(0, 2) - f01) - dy) > tolerance)
        ok = [flag and not b for flag, b in zip(ok, bad)]
    if kx and ky:
        bad = _masklist(_absolute(corner(1, 1) - (f00 + dx + dy)) > tolerance)
        ok = [flag and not b for flag, b in zip(ok, bad)]

    tfull = f00 + kx * dx + ky * dy
    return _v_startp_diag(n, m, w, wpre, table, cx, cy), tfull, ok


# ---------------------------------------------------------------------------
# Vector all-reduce (equation (9))
# ---------------------------------------------------------------------------

def _v_allreduce(platform: Platform, cores_list, payload):
    """``MPI_Allreduce`` time over vectors of core counts and payload sizes."""
    cores_vec = _vector([float(p) for p in cores_list])
    cores_per_node = _minimum(cores_vec, float(platform.node.cores_per_node))
    log_p = _log2(cores_vec)
    log_c = _log2(cores_per_node)
    off_node_term = (
        (log_p - log_c) * cores_per_node * _v_total_off(platform.off_node, payload)
    )
    if platform.node.cores_per_node > 1:
        on_chip_term = _where(
            [p > 1 for p in _tolist(cores_per_node)],
            log_c * cores_per_node * _v_total_chip(platform.on_chip, payload),
            0.0,
        )
        total = off_node_term + on_chip_term
    else:
        total = off_node_term + 0.0
    return _where([p == 1 for p in cores_list], 0.0, total)


# ---------------------------------------------------------------------------
# Batch evaluation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PointValues:
    """Per-point model outputs needed to build a ``BackendResult``.

    ``stack_phase`` is ``nsweeps * Tstack`` and ``nonwavefront_phase`` is
    ``Tnonwavefront`` - the two non-fill entries of the analytic backends'
    phase breakdown.  ``rework`` is the bounded expected-rework correction
    of fault-model platforms, exactly 0.0 on fault-free ones.
    """

    time_per_iteration: float
    computation_per_iteration: float
    pipeline_fill: float
    stack_phase: float
    nonwavefront_phase: float
    rework: float = 0.0


def _scalar_point(config: _Config) -> PointValues:
    """Per-point fallback through the scalar model (unhashable group keys)."""
    spec, platform, grid, mapping = config
    iteration = iteration_prediction(spec, platform, grid, mapping, method="fast")
    return PointValues(
        time_per_iteration=iteration.time_per_iteration,
        computation_per_iteration=iteration.computation_per_iteration,
        pipeline_fill=iteration.pipeline_fill_time,
        stack_phase=iteration.nsweeps * iteration.stack.total,
        nonwavefront_phase=iteration.tnonwavefront,
        rework=iteration.trework,
    )


def batch_point_values(configs: Sequence[_Config]) -> List[PointValues]:
    """Evaluate the model over a design matrix, one group at a time.

    ``configs`` holds resolved ``(spec, platform, grid, core_mapping)``
    tuples (what :meth:`PredictionRequest.resolve` returns); the result list
    is in input order.  Equivalent to per-point ``method="fast"`` evaluation
    within 1e-9 relative (bit-identical on homogeneous platforms).
    """
    configs = list(configs)
    results: List[PointValues] = [None] * len(configs)  # type: ignore[list-item]
    groups: Dict[Tuple[Platform, CoreMapping], List[int]] = {}
    for index, config in enumerate(configs):
        _spec, platform, _grid, mapping = config
        try:
            groups.setdefault((platform, mapping), []).append(index)
        except TypeError:
            results[index] = _scalar_point(config)
    for (platform, mapping), indices in groups.items():
        group_results = _evaluate_group(
            platform, mapping, [configs[i] for i in indices]
        )
        for index, point in zip(indices, group_results):
            results[index] = point
    return results


def _evaluate_group(
    platform: Platform,
    mapping: CoreMapping,
    configs: Sequence[_Config],
) -> List[PointValues]:
    """Evaluate one ``(platform, mapping)`` group as struct-of-arrays."""
    _require_analytic_supported(platform)
    specs = [config[0] for config in configs]
    grids = [config[2] for config in configs]

    # Per-point scalar inputs (cheap: a handful of float ops per point).
    w_list = []
    wpre_list = []
    ew_list = []
    ns_list = []
    n_list = []
    m_list = []
    for spec, grid in zip(specs, grids):
        w_list.append(spec.work_per_tile(grid, platform))
        wpre_list.append(spec.pre_work_per_tile(grid, platform))
        ew_list.append(spec.message_size_ew(grid))
        ns_list.append(spec.message_size_ns(grid))
        n_list.append(grid.n)
        m_list.append(grid.m)
    inflation = platform.noise_inflation()
    if inflation != 1.0:  # repro: noqa[RPR004] exactly 1.0 on homogeneous platforms; preserves bit-for-bit identity
        w_list = [w * inflation for w in w_list]
        wpre_list = [wpre * inflation for wpre in wpre_list]
    dump = _fault_inflation(platform)
    if dump != 1.0:  # repro: noqa[RPR004] exactly 1.0 on fault-free platforms; preserves bit-for-bit identity
        w_list = [w * dump for w in w_list]
        wpre_list = [wpre * dump for wpre in wpre_list]

    multicore = platform.is_multicore and mapping.cores_per_node > 1
    profile = platform.speed_profile
    heterogeneous = profile is not None and not profile.is_trivial

    # -- fill times (r2a)-(r3b) ------------------------------------------------------
    tdiag_list, tfull_list = _fill_corners(
        platform, mapping, multicore, configs,
        w_list, wpre_list, ew_list, ns_list, n_list, m_list,
    )
    tdiag_work_list = [
        wpre + (m - 1) * w for wpre, m, w in zip(wpre_list, m_list, w_list)
    ]
    tfull_work_list = [
        wpre + (n + m - 2) * w
        for wpre, n, m, w in zip(wpre_list, n_list, m_list, w_list)
    ]
    if heterogeneous:
        for i, grid in enumerate(grids):
            extra_diag, extra_full = _fill_heterogeneity_extras(
                platform, grid, mapping, w_list[i], wpre_list[i]
            )
            tdiag_list[i] += extra_diag
            tfull_list[i] += extra_full
            tdiag_work_list[i] += extra_diag
            tfull_work_list[i] += extra_full

    # -- stack time (r4) -------------------------------------------------------------
    if heterogeneous:
        slowest_list = [max_multiplier(profile, grid, mapping) for grid in grids]
        w_stack_list = list(w_list)
        wpre_stack_list = list(wpre_list)
        for i, slowest in enumerate(slowest_list):
            if slowest != 1.0:  # repro: noqa[RPR004] trivial profile yields exactly 1.0; skip to keep identity
                w_stack_list[i] *= slowest
                wpre_stack_list[i] *= slowest
    else:
        slowest_list = None
        w_stack_list = w_list
        wpre_stack_list = wpre_list
    stack_total_list, stack_work_list = _stack_times(
        platform, mapping, specs, grids,
        w_stack_list, wpre_stack_list, ew_list, ns_list,
    )

    # -- non-wavefront term ----------------------------------------------------------
    nonwf_work_list, nonwf_comm_list = _nonwavefront_components(
        platform, specs, grids
    )

    # -- assembly (r5) ---------------------------------------------------------------
    # The schedule counters walk the phase tuple on each access; id-keyed
    # memoisation is safe here because `configs` keeps every spec alive.
    schedule_counts: Dict[int, Tuple[int, int, int]] = {}
    faults = platform.faults
    fails = faults is not None and faults.fails
    points = []
    for i, spec in enumerate(specs):
        nonwf_work = nonwf_work_list[i]
        if inflation != 1.0:  # repro: noqa[RPR004] exactly 1.0 on homogeneous platforms; preserves bit-for-bit identity
            nonwf_work *= inflation
        if dump != 1.0:  # repro: noqa[RPR004] exactly 1.0 on fault-free platforms; preserves bit-for-bit identity
            nonwf_work *= dump
        if heterogeneous and slowest_list[i] != 1.0:  # repro: noqa[RPR004] trivial profile yields exactly 1.0; skip to keep identity
            nonwf_work *= slowest_list[i]
        tnonwavefront = nonwf_work + nonwf_comm_list[i]
        counts = schedule_counts.get(id(spec))
        if counts is None:
            counts = (spec.ndiag, spec.nfull, spec.nsweeps)
            schedule_counts[id(spec)] = counts
        ndiag, nfull, nsweeps = counts
        trework = 0.0
        if fails:
            # Same operation order as iteration_prediction's base_time so
            # the guard and correction agree with the scalar model.
            base_time = (
                ndiag * tdiag_list[i]
                + nfull * tfull_list[i]
                + nsweeps * stack_total_list[i]
                + nonwf_work
                + nonwf_comm_list[i]
            )
            rework_guard(faults, base_time)
            trework = expected_rework_us(faults, base_time)
        pipeline_fill = ndiag * tdiag_list[i] + nfull * tfull_list[i]
        stack_phase = nsweeps * stack_total_list[i]
        points.append(
            PointValues(
                time_per_iteration=(
                    pipeline_fill + stack_phase + tnonwavefront + trework
                ),
                computation_per_iteration=(
                    ndiag * tdiag_work_list[i]
                    + nfull * tfull_work_list[i]
                    + nsweeps * stack_work_list[i]
                    + nonwf_work
                    + trework
                ),
                pipeline_fill=pipeline_fill,
                stack_phase=stack_phase,
                nonwavefront_phase=tnonwavefront,
                rework=trework,
            )
        )
    return points


def _fill_corners(
    platform: Platform,
    mapping: CoreMapping,
    multicore: bool,
    configs: Sequence[_Config],
    w_list, wpre_list, ew_list, ns_list, n_list, m_list,
) -> Tuple[List[float], List[float]]:
    """``(StartP(1, m), StartP(n, m))`` lists for one group (fast method)."""
    if not multicore:
        w, wpre = _vector(w_list), _vector(wpre_list)
        table, _cx, _cy = _v_fill_table(
            platform, mapping, False, _vector(ew_list), _vector(ns_list)
        )
        tdiag, tfull = _v_startp_homogeneous(
            n_list, m_list, w, wpre, table[0][0]
        )
        return _tolist(tdiag), _tolist(tfull)

    tdiag_list = [0.0] * len(configs)
    tfull_list = [0.0] * len(configs)
    shapes: Dict[Tuple[int, int], List[int]] = {}
    for i, (n, m) in enumerate(zip(n_list, m_list)):
        shapes.setdefault((n, m), []).append(i)
    for (n, m), indices in shapes.items():
        w = _vector([w_list[i] for i in indices])
        wpre = _vector([wpre_list[i] for i in indices])
        table, cx, cy = _v_fill_table(
            platform,
            mapping,
            True,
            _vector([ew_list[i] for i in indices]),
            _vector([ns_list[i] for i in indices]),
        )
        folded = _v_startp_periodic(n, m, w, wpre, table, cx, cy)
        if folded is None:
            tdiag, tfull = _v_startp_exact(n, m, w, wpre, table, cx, cy)
            ok = [True] * len(indices)
        else:
            tdiag, tfull, ok = folded
        tdiag_values, tfull_values = _tolist(tdiag), _tolist(tfull)
        for local, index in enumerate(indices):
            if ok[local]:
                tdiag_list[index] = tdiag_values[local]
                tfull_list[index] = tfull_values[local]
            else:
                # Rare: this point's fold linearity check failed; use the
                # scalar exact walk exactly as the scalar fast path would.
                spec, _platform, grid, _mapping = configs[index]
                scalar_table, _ = _fill_cost_table(spec, platform, grid, mapping)
                tdiag_list[index], tfull_list[index] = _startp_exact(
                    n, m, w_list[index], wpre_list[index], scalar_table, cx, cy
                )
    return tdiag_list, tfull_list


def _stack_times(
    platform: Platform,
    mapping: CoreMapping,
    specs, grids, w_list, wpre_list, ew_list, ns_list,
) -> Tuple[List[float], List[float]]:
    """Vectorized equation (r4): ``(Tstack, stack work)`` lists for a group."""
    ew, ns = _vector(ew_list), _vector(ns_list)
    receive_west = _v_receive_off(platform.off_node, ew)
    receive_north = _v_receive_off(platform.off_node, ns)
    send_east = _v_send_off(platform.off_node, ew)
    send_south = _v_send_off(platform.off_node, ns)
    cores_per_bus = max(1, mapping.cores_per_node // platform.node.buses_per_node)
    if cores_per_bus <= 1 or platform.on_chip is None:
        contention = 0.0
    elif cores_per_bus == 2:
        i_ns = platform.on_chip.dma_setup + ns * platform.on_chip.gap_per_byte_dma
        contention = i_ns + i_ns
    else:
        i_ew = platform.on_chip.dma_setup + ew * platform.on_chip.gap_per_byte_dma
        i_ns = platform.on_chip.dma_setup + ns * platform.on_chip.gap_per_byte_dma
        multiplier = cores_per_bus / 4.0
        contention = (
            multiplier * i_ew
            + multiplier * i_ns
            + multiplier * i_ew
            + multiplier * i_ns
        )
    per_tile_comm = receive_west + receive_north + send_east + send_south + contention
    w, wpre = _vector(w_list), _vector(wpre_list)
    tiles = _vector([spec.tiles_per_stack() for spec in specs])
    per_tile = per_tile_comm + w + wpre
    total = per_tile * tiles - wpre
    work = (w + wpre) * tiles - wpre
    return _tolist(total), _tolist(work)


def _nonwavefront_components(
    platform: Platform, specs, grids
) -> Tuple[List[float], List[float]]:
    """``(work, comm)`` of the non-wavefront term for every point of a group.

    All-reduce models vectorize (equation (9)); stencil and custom models
    fall back to their own scalar ``evaluate_components``.
    """
    size = len(specs)
    work_list = [0.0] * size
    comm_list = [0.0] * size
    allreduce_indices = []
    for i, spec in enumerate(specs):
        model = spec.nonwavefront
        if type(model) is NoNonWavefront:
            continue
        if type(model) is AllReduceNonWavefront:
            allreduce_indices.append(i)
        else:
            work_list[i], comm_list[i] = model.evaluate_components(
                platform, spec, grids[i]
            )
    if allreduce_indices:
        cores = [grids[i].total_processors for i in allreduce_indices]
        payload = _vector(
            [float(specs[i].nonwavefront.payload_bytes) for i in allreduce_indices]
        )
        counts = _vector(
            [float(specs[i].nonwavefront.count) for i in allreduce_indices]
        )
        comm_values = _tolist(counts * _v_allreduce(platform, cores, payload))
        for local, index in enumerate(allreduce_indices):
            comm_list[index] = comm_values[local]
    return work_list, comm_list
