"""LogGP platform parameter types.

The LogGP model [Alexandrov et al., JPDC 1997] characterises a message
passing platform by:

``L``  end-to-end latency of a small message,
``o``  CPU overhead paid by the sender and the receiver,
``g``  minimum gap between consecutive message injections (zero on modern
       machines - Section 3 of the paper), and
``G``  the gap *per byte* (inverse bandwidth) for long messages.

The paper extends this with an explicit eager/rendezvous protocol switch at
1 KiB (the handshake time ``h``) for off-node messages, and with a separate
set of on-chip parameters (``ocopy``, ``odma``, ``Gcopy``, ``Gdma``) for
messages exchanged between two cores of the same node (Section 3.2,
Table 1(b) and Table 2).

This module defines the frozen dataclasses that carry those constants.  The
communication *equations* that consume them (Table 1) live in
:mod:`repro.core.comm`; concrete machine instances (Cray XT4, IBM SP/2, ...)
live in :mod:`repro.platforms`.

All times are in microseconds and all sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.faults import FaultModel
from repro.core.hetero import NoiseModel, SpeedProfile
from repro.util.caching import cached_field_hash

#: Message size (bytes) above which the MPI implementation switches from the
#: eager protocol to a rendezvous handshake on the Cray XT4 (Section 3.1).
DEFAULT_EAGER_LIMIT_BYTES: int = 1024


@dataclass(frozen=True)
class OffNodeParams:
    """LogGP parameters for communication between two *different* nodes.

    Attributes
    ----------
    latency:
        ``L`` - the end-to-end wire + switch latency in microseconds.
    overhead:
        ``o`` - per-message CPU overhead at the sender and at the receiver
        (each side pays ``o``), in microseconds.  ``o = oinit + oc2NIC``.
    gap_per_byte:
        ``G`` - time per byte of payload, in microseconds/byte.  ``1/G`` is
        the effective bandwidth.
    handshake_overhead:
        ``oh`` - the CPU overhead of processing one leg of the rendezvous
        handshake.  The paper found this negligible on the XT4; it defaults
        to zero but is kept as an explicit parameter so other platforms can
        set it.
    eager_limit:
        Largest message (bytes) sent eagerly; larger messages pay the
        handshake ``h = 2(L + oh)`` before the payload is transmitted.
    gap:
        The LogGP ``g`` parameter (minimum inter-message gap).  Zero on
        modern machines; retained for completeness and for modelling older
        platforms.
    """

    latency: float
    overhead: float
    gap_per_byte: float
    handshake_overhead: float = 0.0
    eager_limit: int = DEFAULT_EAGER_LIMIT_BYTES
    gap: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.overhead < 0 or self.gap_per_byte < 0:
            raise ValueError("LogGP parameters must be non-negative")
        if self.eager_limit < 0:
            raise ValueError("eager_limit must be non-negative")

    @property
    def handshake_time(self) -> float:
        """``h``: total round-trip handshake time, ``L + oh + L + oh``."""
        return 2.0 * (self.latency + self.handshake_overhead)

    @property
    def bandwidth_bytes_per_us(self) -> float:
        """Effective long-message bandwidth ``1/G`` in bytes per microsecond."""
        if self.gap_per_byte == 0.0:  # repro: noqa[RPR004] G = 0 is the exact infinite-bandwidth sentinel
            return float("inf")
        return 1.0 / self.gap_per_byte


@dataclass(frozen=True)
class OnChipParams:
    """LogGP-style parameters for communication between cores of one node.

    The on-chip model (Section 3.2) distinguishes a plain memory-copy path
    for small messages from a DMA path for large ones:

    * messages of at most ``eager_limit`` bytes pay ``ocopy`` at each end and
      ``Gcopy`` per byte;
    * larger messages pay ``o = ocopy + odma`` at the sender (DMA setup),
      ``Gdma`` per byte, and ``ocopy`` at the receiver.

    On-chip latency is assumed to be ~0 (the paper's assumption ``L ≈ 0``).
    """

    copy_overhead: float
    dma_setup: float
    gap_per_byte_copy: float
    gap_per_byte_dma: float
    eager_limit: int = DEFAULT_EAGER_LIMIT_BYTES

    def __post_init__(self) -> None:
        if min(
            self.copy_overhead,
            self.dma_setup,
            self.gap_per_byte_copy,
            self.gap_per_byte_dma,
        ) < 0:
            raise ValueError("on-chip parameters must be non-negative")

    @property
    def overhead(self) -> float:
        """``o`` for large on-chip messages: ``ocopy + odma``."""
        return self.copy_overhead + self.dma_setup


@dataclass(frozen=True)
class NodeArchitecture:
    """Description of a (possibly multi-core) node.

    Attributes
    ----------
    cores_per_node:
        Total number of cores available to the application on each node.
    buses_per_node:
        Number of independent shared-bus / memory / NIC groups per node.
        The paper's XT4 has one; Section 5.3 considers a 16-core node with a
        separate bus per group of four cores, which is expressed here as
        ``cores_per_node=16, buses_per_node=4``.
    cores_per_chip:
        Number of cores per chip (socket/die) when the node's cores are
        split over several chips with a distinct intra-node interconnect
        between them (hierarchical platforms).  ``None`` - the default -
        means all of a node's cores share one chip, the paper's XT4 layout.
    """

    cores_per_node: int = 1
    buses_per_node: int = 1
    cores_per_chip: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if self.buses_per_node < 1:
            raise ValueError("buses_per_node must be >= 1")
        if self.cores_per_node % self.buses_per_node != 0:
            raise ValueError("cores_per_node must be a multiple of buses_per_node")
        if self.cores_per_chip is not None:
            if self.cores_per_chip < 1:
                raise ValueError("cores_per_chip must be >= 1")
            if self.cores_per_node % self.cores_per_chip != 0:
                raise ValueError("cores_per_node must be a multiple of cores_per_chip")

    @property
    def cores_per_bus(self) -> int:
        """Number of cores sharing each memory bus / NIC."""
        return self.cores_per_node // self.buses_per_node

    @property
    def chips_per_node(self) -> int:
        """Number of chips per node (1 unless ``cores_per_chip`` subdivides)."""
        if self.cores_per_chip is None:
            return 1
        return self.cores_per_node // self.cores_per_chip


@dataclass(frozen=True)
class Platform:
    """A complete platform description consumed by the performance models.

    Combines the off-node LogGP parameters, the on-chip parameters (optional:
    single-core-per-node platforms such as the IBM SP/2 have none), and the
    node architecture.

    Three optional fields extend the description to heterogeneous and noisy
    machines (see :mod:`repro.core.hetero` and ``docs/platforms.md``):

    * ``intra_node`` - LogGP parameters of the *intra-node* interconnect
      (e.g. a socket-to-socket link) used for messages between two chips of
      one node when ``node.cores_per_chip`` subdivides the node.  Messages
      then resolve to one of three hop levels by rank placement: intra-chip
      (``on_chip``), intra-node (``intra_node``), inter-node (``off_node``);
    * ``speed_profile`` - per-node compute-speed multipliers (stragglers)
      plus optional time-varying slowdown windows;
    * ``noise`` - a background-interference model stretching compute times;
    * ``faults`` - node fail/recover behaviour with checkpoint/restart
      costs (see :mod:`repro.core.faults` and ``docs/faults.md``).

    All of them default to ``None`` (the paper's homogeneous, quiet,
    fault-free machine), and the trivial settings (all multipliers 1.0,
    null noise, null faults, one chip per node) reproduce the homogeneous
    predictions bit-identically.
    """

    name: str
    off_node: OffNodeParams
    on_chip: Optional[OnChipParams] = None
    node: NodeArchitecture = field(default_factory=NodeArchitecture)
    #: Relative compute-speed multiplier applied to application work rates
    #: (Wg).  1.0 means "as calibrated"; a hypothetical platform with cores
    #: twice as fast would use 0.5.
    compute_scale: float = 1.0
    #: LogGP parameters of the intra-node (chip-to-chip) interconnect level.
    intra_node: Optional[OffNodeParams] = None
    #: Per-node compute-speed multipliers (straggler scenarios).
    speed_profile: Optional["SpeedProfile"] = None
    #: Background-interference model applied to compute operations.
    noise: Optional["NoiseModel"] = None
    #: Node fail/recover behaviour plus checkpoint/restart costs.
    faults: Optional["FaultModel"] = None

    def __post_init__(self) -> None:
        if self.compute_scale <= 0:
            raise ValueError("compute_scale must be positive")
        if self.node.cores_per_node > 1 and self.on_chip is None:
            raise ValueError(
                "multi-core platforms must define on-chip communication parameters"
            )
        if self.intra_node is not None and self.node.chips_per_node == 1:
            raise ValueError(
                "intra_node parameters require node.cores_per_chip to subdivide "
                "the node into more than one chip"
            )

    def __hash__(self) -> int:
        # Platforms key every prediction memo; the generated hash re-walks
        # the nested parameter tree on each dict operation.
        return cached_field_hash(self)

    @property
    def is_multicore(self) -> bool:
        return self.node.cores_per_node > 1

    @property
    def is_hierarchical(self) -> bool:
        """True when messages resolve to three hop levels (chip/node/machine)."""
        return self.node.chips_per_node > 1 and self.intra_node is not None

    @property
    def is_homogeneous(self) -> bool:
        """True when the platform is (effectively) the paper's quiet machine.

        A platform whose heterogeneity fields are absent *or trivial* - all
        speed multipliers 1.0, null noise, one chip per node - must produce
        bit-identical predictions to the plain homogeneous description; this
        property is the single test every engine uses to decide.
        """
        if self.speed_profile is not None and not self.speed_profile.is_trivial:
            return False
        if self.noise is not None and not self.noise.is_null:
            return False
        if self.faults is not None and not self.faults.is_null:
            return False
        return not self.is_hierarchical

    def with_cores_per_node(
        self, cores_per_node: int, buses_per_node: int = 1
    ) -> "Platform":
        """Return a copy of this platform with a different node architecture.

        Used by the Section 5.3 design study (Figure 10), which varies the
        number of cores per node while keeping the communication constants.
        A chip subdivision is carried over when it still divides the new
        node size; otherwise the hierarchy (chip split and intra-node link)
        is dropped, since the old chip shape no longer describes the node.
        """
        cores_per_chip = self.node.cores_per_chip
        intra_node = self.intra_node
        if cores_per_chip is not None and cores_per_node % cores_per_chip != 0:
            cores_per_chip = None
            intra_node = None
        if cores_per_chip is not None and cores_per_node // cores_per_chip == 1:
            intra_node = None
        node = NodeArchitecture(
            cores_per_node=cores_per_node,
            buses_per_node=buses_per_node,
            cores_per_chip=cores_per_chip,
        )
        name = f"{self.name}-{cores_per_node}core"
        if buses_per_node > 1:
            name += f"-{buses_per_node}bus"
        return replace(self, name=name, node=node, intra_node=intra_node)

    def with_compute_scale(self, compute_scale: float) -> "Platform":
        """Return a copy with a different relative compute speed."""
        return replace(self, compute_scale=compute_scale)

    def with_speed_profile(self, speed_profile: Optional[SpeedProfile]) -> "Platform":
        """Return a copy with a different per-node speed profile."""
        return replace(self, speed_profile=speed_profile)

    def with_noise(self, noise: Optional[NoiseModel]) -> "Platform":
        """Return a copy with a different background-noise model."""
        return replace(self, noise=noise)

    def with_faults(self, faults: Optional[FaultModel]) -> "Platform":
        """Return a copy with a different fault/checkpoint model."""
        return replace(self, faults=faults)

    def with_hierarchy(
        self, cores_per_chip: int, intra_node: OffNodeParams
    ) -> "Platform":
        """Return a copy with the node split into chips over an intra-node link."""
        node = replace(self.node, cores_per_chip=cores_per_chip)
        return replace(self, node=node, intra_node=intra_node)

    def scaled_work(self, work_us: float) -> float:
        """Apply the platform's compute-speed scale to a work time (µs)."""
        return work_us * self.compute_scale

    def node_speed_multiplier(self, node_index: int) -> float:
        """The work-time multiplier of node ``node_index`` (1.0 when no profile)."""
        if self.speed_profile is None:
            return 1.0
        return self.speed_profile.multiplier_for_node(node_index)

    def noise_inflation(self) -> float:
        """Mean multiplicative compute stretch of the platform's noise model."""
        if self.noise is None:
            return 1.0
        return self.noise.mean_inflation()
