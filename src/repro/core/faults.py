"""Fault, checkpoint/restart and recovery value types.

The paper's model (and every scenario added so far) assumes nodes that
never fail mid-run.  Real machines at scale fail constantly - the classic
resilience literature (Daly's optimal-checkpoint analysis and its
ancestors) models a node as failing with exponentially-distributed
inter-failure times of mean MTBF, the application writing periodic
checkpoints, and every failure costing a repair, a restart and the rework
of everything computed since the last checkpoint.

:class:`FaultModel` is the frozen value type describing such a machine.
It is attached to :class:`~repro.core.loggp.Platform` (``platform.faults``)
and consumed by two backends:

* the discrete-event simulator replays seeded per-rank failure streams
  (``random.Random(fault_seed * 2_000_003 + rank)``) and injects the
  checkpoint-dump, repair/restart and rework costs into each rank's
  compute timeline (:mod:`repro.simulator.machine`);
* the analytic model applies the deterministic checkpoint-dump inflation
  ``1 + dump/interval`` to the per-tile work and adds a bounded
  *expected-rework* correction ``E[failures] x mean rework``
  (:func:`expected_rework_us`), mirroring the bounded-heterogeneity
  correction of :mod:`repro.core.model`.

The analytic correction is a first-order expansion, accurate only while
failures are rare within one run (:func:`rework_guard`); outside the guard
the simulator is the reference and the analytic backends refuse the
configuration rather than report a silently-wrong number.

>>> fm = FaultModel(mtbf_us=1e9, repair_us=1e6, checkpoint_interval_us=1e7,
...                 checkpoint_cost_us=1e4)
>>> fm.is_null
False
>>> FaultModel().is_null
True
>>> round(fm.checkpoint_inflation(), 3)
1.001
>>> expected_rework_us(fm, 0.0)
0.0
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "FaultModel",
    "FAULT_STREAM_STRIDE",
    "expected_failures",
    "expected_rework_us",
    "rework_guard",
]

#: Multiplier deriving a rank's failure stream seed from the fault seed:
#: ``Random(fault_seed * FAULT_STREAM_STRIDE + rank)``.  Deliberately a
#: different prime from the noise streams' ``1_000_003`` so fault schedules
#: are independent of noise seeds (changing one never changes the other).
FAULT_STREAM_STRIDE = 2_000_003

#: Applicability guard for the analytic expected-rework correction: the
#: first-order expansion is only trusted while the expected number of
#: failures per run stays below this bound.
MAX_EXPECTED_FAILURES = 0.5


@dataclass(frozen=True)
class FaultModel:
    """Node fail/recover behaviour plus checkpoint/restart costs.

    All times are microseconds, matching the rest of the model.  The
    defaults describe a machine that never fails and never checkpoints -
    the *null* model, whose attachment must not change any prediction bit
    for bit (:attr:`is_null`).

    ``mtbf_us``
        Mean time between failures of one rank's node (exponential
        inter-failure times); ``inf`` disables failures.
    ``repair_us`` / ``restart_us``
        Downtime after a failure: hardware repair/failover plus the
        application restart (checkpoint read-back).
    ``checkpoint_interval_us``
        Compute time between checkpoint dumps; ``inf`` disables
        checkpointing (a failure then reworks everything computed so far).
    ``checkpoint_cost_us``
        Time to write one checkpoint dump.

    >>> FaultModel(mtbf_us=5e8).is_null
    False
    >>> FaultModel(checkpoint_interval_us=1e7, checkpoint_cost_us=0.0).is_null
    True
    """

    mtbf_us: float = math.inf
    repair_us: float = 0.0
    restart_us: float = 0.0
    checkpoint_interval_us: float = math.inf
    checkpoint_cost_us: float = 0.0

    def __post_init__(self) -> None:
        if self.mtbf_us <= 0:
            raise ValueError("mtbf_us must be positive (inf disables failures)")
        if self.repair_us < 0 or self.restart_us < 0:
            raise ValueError("repair_us and restart_us must be non-negative")
        if self.checkpoint_interval_us <= 0:
            raise ValueError(
                "checkpoint_interval_us must be positive (inf disables checkpointing)"
            )
        if self.checkpoint_cost_us < 0:
            raise ValueError("checkpoint_cost_us must be non-negative")

    @property
    def is_null(self) -> bool:
        """True when the model never changes any timeline.

        The fault-free limit: no failures ever strike *and* checkpoint
        dumps cost nothing (either never taken or free), so attaching the
        model preserves every prediction bit for bit.
        """
        return self.mtbf_us == math.inf and (
            self.checkpoint_interval_us == math.inf or self.checkpoint_cost_us == 0.0  # repro: noqa[RPR004] bit-for-bit fault-free-limit contract
        )

    @property
    def fails(self) -> bool:
        """True when failures can actually strike (finite MTBF)."""
        return self.mtbf_us != math.inf

    def checkpoint_inflation(self) -> float:
        """Deterministic work stretch from periodic checkpoint dumps.

        Every ``checkpoint_interval_us`` of compute pays one
        ``checkpoint_cost_us`` dump, stretching compute by
        ``1 + cost/interval``; exactly 1.0 when checkpointing is disabled
        or free.

        >>> FaultModel(checkpoint_interval_us=1e6,
        ...            checkpoint_cost_us=5e4).checkpoint_inflation()
        1.05
        """
        if self.checkpoint_interval_us == math.inf:
            return 1.0
        return 1.0 + self.checkpoint_cost_us / self.checkpoint_interval_us

    def mean_rework_us(self, base_time_us: float) -> float:
        """Expected cost of one failure: downtime plus rework.

        A failure pays repair + restart, then redoes the work since the
        last checkpoint - on average half a checkpoint interval, capped at
        the run length (an uncheckpointed run reworks on average half of
        what it has computed).
        """
        interval = min(self.checkpoint_interval_us, base_time_us)
        return self.repair_us + self.restart_us + interval / 2.0


def expected_failures(model: FaultModel, base_time_us: float) -> float:
    """Expected failures of one rank during ``base_time_us`` of compute."""
    if not model.fails:
        return 0.0
    return base_time_us / model.mtbf_us


def expected_rework_us(model: FaultModel, base_time_us: float) -> float:
    """Bounded expected-rework correction: ``E[failures] x mean rework``.

    First-order resilience overhead of a run whose fault-free span is
    ``base_time_us``: non-negative, vanishing as MTBF grows to ``inf``,
    and monotone in the failure rate ``1/MTBF``.  Valid only within
    :func:`rework_guard` (rare failures); the callers enforce the guard.

    >>> fm = FaultModel(mtbf_us=1e8, repair_us=1e5, restart_us=1e5,
    ...                 checkpoint_interval_us=1e6)
    >>> expected_rework_us(fm, 1e6)  # 0.01 failures x 700_000 us
    7000.0
    >>> expected_rework_us(FaultModel(), 1e6)
    0.0
    """
    failures = expected_failures(model, base_time_us)
    if failures == 0.0:  # repro: noqa[RPR004] exactly 0.0 when the model never fails (fault-free limit)
        return 0.0
    return failures * model.mean_rework_us(base_time_us)


def rework_guard(model: FaultModel, base_time_us: float) -> None:
    """Raise unless the first-order rework correction is applicable.

    The correction linearises "failures during rework" away, so it is only
    trusted while failures are rare within one run:
    ``E[failures] <= 0.5``.  Beyond that, use the simulator backend.
    """
    failures = expected_failures(model, base_time_us)
    if failures > MAX_EXPECTED_FAILURES:
        raise ValueError(
            f"analytic expected-rework correction is out of its applicability "
            f"range: E[failures] = {failures:.2f} > {MAX_EXPECTED_FAILURES} per "
            f"run (mtbf_us={model.mtbf_us:g}, run={base_time_us:g} us); use "
            f"the simulator backend for failure-dominated regimes"
        )
