"""MPI communication cost models (Table 1 and equation (9) of the paper).

These functions translate the LogGP platform constants of
:class:`repro.core.loggp.Platform` into the cost of the MPI operations that
wavefront codes use:

* the *end-to-end* time of a blocking send/receive pair
  (``total_comm_off_node`` / ``total_comm_on_chip``),
* the CPU time spent inside ``MPI_Send`` (``send_off_node`` / ``send_on_chip``),
* the CPU time spent inside ``MPI_Recv`` once the matching send has started
  (``receive_off_node`` / ``receive_on_chip``), and
* the time of an ``MPI_Allreduce`` over ``P`` cores spread across
  ``C``-core nodes (``allreduce_time``, equation (9)).

All times are microseconds, all message sizes bytes.  Messages larger than
the platform's eager limit (1 KiB on the XT4) pay the rendezvous handshake
``h = 2(L + oh)`` off-node, or a DMA setup on-chip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.core.loggp import OffNodeParams, OnChipParams, Platform
from repro.util.caching import call_with_unhashable_fallback, register_cache_clearer

__all__ = [
    "CommunicationCosts",
    "HOP_LEVELS",
    "total_comm_off_node",
    "send_off_node",
    "receive_off_node",
    "total_comm_on_chip",
    "send_on_chip",
    "receive_on_chip",
    "total_comm",
    "send_cost",
    "receive_cost",
    "allreduce_time",
    "clear_comm_cost_cache",
    "ALLREDUCE_PAYLOAD_BYTES",
]

#: Hop levels of the (optionally hierarchical) interconnect, innermost
#: first: intra-chip, intra-node (chip-to-chip) and inter-node.  Platforms
#: without an ``intra_node`` parameterisation collapse ``"node"`` onto the
#: on-chip sub-model (the paper's two-level classification).
HOP_LEVELS: tuple[str, ...] = ("chip", "node", "machine")

#: Default payload of the convergence-test all-reduce performed at the end of
#: each iteration of Sweep3D / Chimaera: a single double-precision scalar.
ALLREDUCE_PAYLOAD_BYTES: int = 8


def _require_positive_size(message_bytes: float) -> float:
    size = float(message_bytes)
    if size < 0:
        raise ValueError("message size must be non-negative")
    return size


# ---------------------------------------------------------------------------
# Off-node (inter-node) communication: Table 1(a)
# ---------------------------------------------------------------------------

def total_comm_off_node(params: OffNodeParams, message_bytes: float) -> float:
    """End-to-end time for an off-node message (equations (1) and (2)).

    ``<= eager_limit``:  ``o + M*G + L + o``
    ``>  eager_limit``:  ``o + h + o + M*G + L + o`` with ``h = 2(L + oh)``.
    """
    size = _require_positive_size(message_bytes)
    base = params.overhead + size * params.gap_per_byte + params.latency + params.overhead
    if size <= params.eager_limit:
        return base
    return base + params.handshake_time + params.overhead


def send_off_node(params: OffNodeParams, message_bytes: float) -> float:
    """CPU time spent in ``MPI_Send`` for an off-node message (eqs. (3), (4a)).

    Small messages cost one overhead ``o``; large messages additionally wait
    for the rendezvous handshake, ``o + h``.
    """
    size = _require_positive_size(message_bytes)
    if size <= params.eager_limit:
        return params.overhead
    return params.overhead + params.handshake_time


def receive_off_node(params: OffNodeParams, message_bytes: float) -> float:
    """CPU/wait time in ``MPI_Recv`` for an off-node message (eqs. (3), (4b)).

    For small messages the receive costs ``o`` (the payload is already
    buffered).  For large messages the receiver replies to the handshake and
    then waits for the payload: ``L + o + M*G + L + o``.
    """
    size = _require_positive_size(message_bytes)
    if size <= params.eager_limit:
        return params.overhead
    return (
        params.latency
        + params.overhead
        + size * params.gap_per_byte
        + params.latency
        + params.overhead
    )


# ---------------------------------------------------------------------------
# On-chip (intra-node) communication: Table 1(b)
# ---------------------------------------------------------------------------

def total_comm_on_chip(params: OnChipParams, message_bytes: float) -> float:
    """End-to-end time for an on-chip message (equations (5) and (6)).

    ``<= eager_limit``:  ``ocopy + M*Gcopy + ocopy``
    ``>  eager_limit``:  ``(ocopy + odma) + M*Gdma + ocopy``
    """
    size = _require_positive_size(message_bytes)
    if size <= params.eager_limit:
        return params.copy_overhead + size * params.gap_per_byte_copy + params.copy_overhead
    return params.overhead + size * params.gap_per_byte_dma + params.copy_overhead


def send_on_chip(params: OnChipParams, message_bytes: float) -> float:
    """CPU time in ``MPI_Send`` for an on-chip message (eqs. (7), (8a))."""
    size = _require_positive_size(message_bytes)
    if size <= params.eager_limit:
        return params.copy_overhead
    return params.overhead


def receive_on_chip(params: OnChipParams, message_bytes: float) -> float:
    """CPU/wait time in ``MPI_Recv`` for an on-chip message (eqs. (7), (8b))."""
    size = _require_positive_size(message_bytes)
    if size <= params.eager_limit:
        return params.copy_overhead
    return size * params.gap_per_byte_dma + params.copy_overhead


# ---------------------------------------------------------------------------
# Platform-level dispatch helpers
# ---------------------------------------------------------------------------

def _on_chip_params(platform: Platform) -> OnChipParams:
    if platform.on_chip is None:
        raise ValueError(
            f"platform {platform.name!r} does not define on-chip communication parameters"
        )
    return platform.on_chip


def _resolve_level(on_chip: bool, level: str | None) -> str:
    """Normalise the legacy ``on_chip`` flag and the ``level`` name."""
    if level is None:
        return "chip" if on_chip else "machine"
    if level not in HOP_LEVELS:
        raise ValueError(f"level must be one of {HOP_LEVELS}, got {level!r}")
    return level


def _level_params(
    platform: Platform, on_chip: bool, level: str | None
) -> tuple[OffNodeParams, None] | tuple[None, OnChipParams]:
    """Resolve a hop level to its parameter bundle and sub-model.

    Returns ``(off_node_style_params, None)`` for hops priced with the
    Table 1(a) protocol equations (the machine interconnect, or the
    intra-node link on hierarchical platforms) and ``(None, on_chip_params)``
    for hops priced with the Table 1(b) memory-copy/DMA equations.  On
    non-hierarchical platforms a ``"node"`` hop *is* an on-chip hop, so the
    level degrades gracefully instead of raising.
    """
    resolved = _resolve_level(on_chip, level)
    if resolved == "machine":
        return platform.off_node, None
    if resolved == "node" and platform.intra_node is not None:
        return platform.intra_node, None
    return None, _on_chip_params(platform)


def total_comm(
    platform: Platform,
    message_bytes: float,
    *,
    on_chip: bool = False,
    level: str | None = None,
) -> float:
    """End-to-end message time, dispatching on the hop level.

    ``level`` (``"chip"``/``"node"``/``"machine"``) generalises the legacy
    ``on_chip`` flag; when both are given ``level`` wins.
    """
    off_params, chip_params = _level_params(platform, on_chip, level)
    if off_params is not None:
        return total_comm_off_node(off_params, message_bytes)
    return total_comm_on_chip(chip_params, message_bytes)


def send_cost(
    platform: Platform,
    message_bytes: float,
    *,
    on_chip: bool = False,
    level: str | None = None,
) -> float:
    """``MPI_Send`` cost, dispatching on the hop level."""
    off_params, chip_params = _level_params(platform, on_chip, level)
    if off_params is not None:
        return send_off_node(off_params, message_bytes)
    return send_on_chip(chip_params, message_bytes)


def receive_cost(
    platform: Platform,
    message_bytes: float,
    *,
    on_chip: bool = False,
    level: str | None = None,
) -> float:
    """``MPI_Recv`` cost, dispatching on the hop level."""
    off_params, chip_params = _level_params(platform, on_chip, level)
    if off_params is not None:
        return receive_off_node(off_params, message_bytes)
    return receive_on_chip(chip_params, message_bytes)


@dataclass(frozen=True)
class CommunicationCosts:
    """Pre-computed send / receive / end-to-end costs for one message size.

    The plug-and-play model evaluates the same message size many times while
    filling the ``StartP`` recurrence; this small value object avoids
    recomputing the Table 1 equations in the inner loop and keeps the model
    equations readable (``costs.send``, ``costs.receive``, ``costs.total``).
    """

    message_bytes: float
    send: float
    receive: float
    total: float
    on_chip: bool = False

    @classmethod
    def for_message(
        cls,
        platform: Platform,
        message_bytes: float,
        *,
        on_chip: bool = False,
        level: str | None = None,
    ) -> "CommunicationCosts":
        """Costs for one message, memoised on ``(cls, platform, size, level)``.

        ``level`` names the hop level (``"chip"``/``"node"``/``"machine"``)
        on hierarchical platforms; the legacy ``on_chip`` flag maps to
        ``"chip"``/``"machine"``.  Parameter sweeps re-evaluate the same
        handful of message sizes for thousands of grid positions and sweep
        points; the keyed memo makes every repeat a dictionary hit.
        Platforms are frozen dataclasses, so value-equal platforms share
        cache entries; subclasses get their own entries (and instances of
        their own type).
        """
        # An unhashable (e.g. subclassed) platform falls back to an uncached
        # computation.
        return call_with_unhashable_fallback(
            _for_message_cached,
            _for_message_uncached,
            cls,
            platform,
            float(message_bytes),
            _resolve_level(bool(on_chip), level),
        )

    @classmethod
    def _compute(
        cls, platform: Platform, message_bytes: float, level: str
    ) -> "CommunicationCosts":
        return cls(
            message_bytes=message_bytes,
            send=send_cost(platform, message_bytes, level=level),
            receive=receive_cost(platform, message_bytes, level=level),
            total=total_comm(platform, message_bytes, level=level),
            on_chip=level == "chip",
        )

    def with_added(self, send_extra: float = 0.0, receive_extra: float = 0.0) -> "CommunicationCosts":
        """Return a copy with contention penalties added to send/receive.

        Used by the Table 6 multi-core contention extension, which adds a
        bus-interference term ``I`` to specific send and receive operations.
        The end-to-end ``total`` grows by the same amounts.
        """
        return CommunicationCosts(
            message_bytes=self.message_bytes,
            send=self.send + send_extra,
            receive=self.receive + receive_extra,
            total=self.total + send_extra + receive_extra,
            on_chip=self.on_chip,
        )


def _for_message_uncached(
    cls: type, platform: Platform, message_bytes: float, level: str
) -> CommunicationCosts:
    return cls._compute(platform, message_bytes, level)


_for_message_cached = lru_cache(maxsize=16384)(_for_message_uncached)


@register_cache_clearer
def clear_comm_cost_cache() -> None:
    """Drop all memoised :meth:`CommunicationCosts.for_message` entries."""
    _for_message_cached.cache_clear()


# ---------------------------------------------------------------------------
# Group communication: MPI all-reduce (equation (9))
# ---------------------------------------------------------------------------

def allreduce_time(
    platform: Platform,
    total_cores: int,
    message_bytes: float = ALLREDUCE_PAYLOAD_BYTES,
) -> float:
    """Execution time of ``MPI_Allreduce`` over ``total_cores`` cores (eq. (9)).

    ``T = [log2(P) - log2(C)] * C * TotalComm_offnode
        + log2(C) * C * TotalComm_onchip``

    where ``P`` is the total number of cores taking part and ``C`` the number
    of cores per node.  In the special case ``C = 1`` this reduces to
    ``log2(P) * TotalComm_offnode``.  The model assumes a binomial-tree
    reduction followed by a broadcast whose off-node stages are serialised
    through each node's single NIC (hence the factor ``C``).
    """
    if total_cores < 1:
        raise ValueError("total_cores must be >= 1")
    if total_cores == 1:
        return 0.0
    cores_per_node = min(platform.node.cores_per_node, total_cores)
    log_p = math.log2(total_cores)
    log_c = math.log2(cores_per_node)
    off_node_term = (
        (log_p - log_c)
        * cores_per_node
        * total_comm_off_node(platform.off_node, message_bytes)
    )
    if cores_per_node > 1:
        on_chip_term = (
            log_c
            * cores_per_node
            * total_comm_on_chip(_on_chip_params(platform), message_bytes)
        )
    else:
        on_chip_term = 0.0
    return off_node_term + on_chip_term
