"""The plug-and-play reusable LogGP model (Table 5 of the paper).

Given a :class:`~repro.apps.base.WavefrontSpec` (the Table 3 application
parameters), a :class:`~repro.core.loggp.Platform` and a processor grid, this
module evaluates the Table 5 equations:

``(r1a)``  ``Wpre = Wg,pre * Htile * Nx/n * Ny/m``
``(r1b)``  ``W    = Wg     * Htile * Nx/n * Ny/m``
``(r2a)``  ``StartP(1,1) = Wpre``
``(r2b)``  ``StartP(i,j) = max(StartP(i-1,j) + W + TotalCommE + ReceiveN,
                               StartP(i,j-1) + W + SendE + TotalCommS)``
``(r3a)``  ``Tdiagfill = StartP(1,m)``
``(r3b)``  ``Tfullfill = StartP(n,m)``
``(r4)``   ``Tstack = (ReceiveW + ReceiveN + W + SendE + SendS + Wpre)
                      * Nz/Htile - Wpre``
``(r5)``   ``Titer = ndiag*Tdiagfill + nfull*Tfullfill + nsweeps*Tstack
                     + Tnonwavefront``

The multi-core extensions of Table 6 are applied through
:mod:`repro.core.multicore`: the ``StartP`` recurrence uses on-chip costs for
intra-node hops, and the stack term adds the shared-bus contention penalty.

In addition to the iteration time the model reports the breakdown used by the
Section 5 analyses: computation vs communication time (Figure 11) and the
pipeline-fill component (Figure 12).  The split follows the paper's
definition - "the communication component ... is derived from the Send,
Receive, TotalComm and Tallreduce terms in the model; the computation
component is the rest".

Fast prediction engine
----------------------

Evaluating ``StartP`` by walking the full ``n x m`` grid costs O(n*m); at the
paper's largest study size (131,072 processors, a 512 x 256 array) that walk
dominates every sweep-heavy analysis.  Two observations make a fast path with
identical results possible:

* **Homogeneous costs** (one core per node): every grid position pays the same
  communication costs, so the maximising path of equation (r2b) is known in
  closed form - descend to the last row first (earning the ``ReceiveN`` term
  on every eastward step), then traverse east.  ``StartP(n, m)`` reduces to a
  max-plus expression over the two lattice directions; no grid walk at all.

* **Periodic costs** (multi-core nodes): the Table 6 on-chip/off-node
  classification depends only on ``i mod Cx`` and ``j mod Cy``, so the cost
  field repeats with the node's core rectangle.  Beyond a transient of a few
  periods the recurrence grows *exactly* linearly per period in each
  direction, so it suffices to evaluate a small folded grid (a few periods a
  side, holding the full-grid per-tile costs fixed) plus a linear
  extrapolation.  The folded evaluator verifies the linearity numerically
  (second differences and the cross term) and falls back to the exact walk
  whenever the grid is too small to fold or the check fails.

``fill_times`` selects the evaluator automatically (``method="auto"``);
``method="exact"`` forces the reference recurrence, which the tests use to
cross-check the fast path across a randomised matrix of applications,
platforms, grids and core mappings.

Heterogeneous platforms
-----------------------

Platforms carrying a :class:`~repro.core.hetero.SpeedProfile` or a
:class:`~repro.core.hetero.NoiseModel` (see ``docs/platforms.md``) are
priced on top of the homogeneous evaluators: noise scales ``W``/``Wpre`` by
the model's mean inflation before either recurrence runs, and per-node
speed multipliers enter as a *bounded-heterogeneity correction* - every
monotone path performs one tile per wavefront diagonal, so the fill times
gain ``W * (slowest multiplier on the diagonal - 1)`` per diagonal and the
steady-state stack runs at the machine's slowest rank.  Trivial profiles
and null noise leave every result bit-identical to the homogeneous
evaluation (the conformance suite's homogeneous-limit contract).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import WavefrontSpec
from repro.core.decomposition import CoreMapping, ProcessorGrid
from repro.core.faults import expected_rework_us, rework_guard
from repro.core.hetero import column_multipliers, diagonal_multipliers, max_multiplier
from repro.core.loggp import Platform
from repro.core.multicore import (
    StackCommCosts,
    fill_step_costs,
    resolve_core_mapping,
    stack_comm_costs,
)

__all__ = [
    "FillTimes",
    "StackTime",
    "IterationPrediction",
    "FILL_METHODS",
    "fill_times",
    "stack_time",
    "iteration_prediction",
]

#: Valid ``method`` arguments of :func:`fill_times` / :func:`predict`.
FILL_METHODS: tuple[str, ...] = ("auto", "fast", "exact")

#: Number of cost periods kept on each side of the folded grid.  Empirically
#: the recurrence enters its linear regime well within two periods; six gives
#: a wide safety margin while keeping the folded walk tiny.
_FOLD_BASE_PERIODS: int = 6

#: Relative tolerance of the folded evaluator's linearity verification.  The
#: per-period increments agree to ~1e-15 relative once the recurrence is in
#: its linear regime, so any genuine non-linearity trips this immediately.
_FOLD_REL_TOL: float = 1e-10


@dataclass(frozen=True)
class FillTimes:
    """Pipeline fill times for a sweep starting at a corner of the grid.

    ``tdiagfill`` is the time for the sweep to reach the corner on the main
    diagonal of the wavefronts (``StartP(1, m)``); ``tfullfill`` the time to
    reach the opposite corner (``StartP(n, m)``).  The ``*_work`` fields give
    the computation portion of the corresponding critical path, used for the
    bottleneck breakdown.
    """

    tdiagfill: float
    tfullfill: float
    tdiagfill_work: float
    tfullfill_work: float


@dataclass(frozen=True)
class StackTime:
    """Stack-processing time (equation (r4)) and its computation portion."""

    total: float
    work: float
    per_tile_comm: float
    tiles: float
    comm_costs: StackCommCosts


@dataclass(frozen=True)
class IterationPrediction:
    """Model outputs for a single iteration of the wavefront computation."""

    spec_name: str
    platform_name: str
    grid: ProcessorGrid
    core_mapping: CoreMapping
    w: float
    wpre: float
    fill: FillTimes
    stack: StackTime
    tnonwavefront: float
    tnonwavefront_work: float
    nsweeps: int
    nfull: int
    ndiag: int
    #: Bounded expected-rework correction (``E[failures] x mean rework``) of
    #: the platform's fault model; exactly 0.0 on fault-free platforms, so
    #: every homogeneous result stays bit-identical.
    trework: float = 0.0

    @property
    def tdiagfill(self) -> float:
        return self.fill.tdiagfill

    @property
    def tfullfill(self) -> float:
        return self.fill.tfullfill

    @property
    def tstack(self) -> float:
        return self.stack.total

    @property
    def pipeline_fill_time(self) -> float:
        """Total pipeline-fill time per iteration (Figure 12's quantity)."""
        return self.ndiag * self.fill.tdiagfill + self.nfull * self.fill.tfullfill

    @property
    def time_per_iteration(self) -> float:
        """Equation (r5) plus the expected-rework correction, microseconds."""
        return (
            self.ndiag * self.fill.tdiagfill
            + self.nfull * self.fill.tfullfill
            + self.nsweeps * self.stack.total
            + self.tnonwavefront
            + self.trework
        )

    @property
    def computation_per_iteration(self) -> float:
        """Computation component of the iteration time (Figure 11).

        Rework redoes computation (plus node downtime), so the correction
        counts here rather than in the communication component.
        """
        return (
            self.ndiag * self.fill.tdiagfill_work
            + self.nfull * self.fill.tfullfill_work
            + self.nsweeps * self.stack.work
            + self.tnonwavefront_work
            + self.trework
        )

    @property
    def communication_per_iteration(self) -> float:
        """Communication component of the iteration time (Figure 11)."""
        return self.time_per_iteration - self.computation_per_iteration


def _fill_cost_table(
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    mapping: CoreMapping,
) -> tuple[list[list[tuple[float, float, float, float]]], bool]:
    """Per-residue-class ``(TotalCommE, ReceiveN, SendE, TotalCommS)`` costs.

    The table is indexed ``[i % Cx][j % Cy]`` (1-based grid coordinates); the
    Table 6 on-chip/off-node classification - delegated to
    :func:`repro.core.multicore.fill_step_costs`, the single source of truth -
    depends only on those residues.  For single-core platforms the table
    collapses to one off-node entry.
    """
    multicore = platform.is_multicore and mapping.cores_per_node > 1
    cx, cy = (mapping.cx, mapping.cy) if multicore else (1, 1)
    table = []
    for im in range(cx):
        i = im if im >= 1 else cx  # representative 1-based column of the class
        column = []
        for jm in range(cy):
            j = jm if jm >= 1 else cy
            costs = fill_step_costs(platform, spec, grid, i, j, mapping)
            column.append(
                (
                    costs.total_comm_east,
                    costs.receive_north,
                    costs.send_east,
                    costs.total_comm_south,
                )
            )
        table.append(column)
    return table, multicore


def _startp_exact(
    n: int,
    m: int,
    w: float,
    wpre: float,
    table: list[list[tuple[float, float, float, float]]],
    cx: int,
    cy: int,
) -> tuple[float, float]:
    """Reference evaluation of equations (r2a)-(r2b): the full grid walk.

    Returns ``(StartP(1, m), StartP(n, m))``, i.e. the diagonal- and
    full-fill corner values for a sweep originating at ``(1, 1)``.
    """
    # Only cy distinct row cost patterns exist; materialise each once.
    rows = [[table[i % cx][jm] for i in range(1, n + 1)] for jm in range(cy)]

    # Row j = 1: west dependencies only, and no ReceiveN term.
    prev = [0.0] * n
    prev[0] = wpre
    row1 = rows[1 % cy]
    for i in range(2, n + 1):
        prev[i - 1] = prev[i - 2] + w + row1[i - 1][0]

    for j in range(2, m + 1):
        row = rows[j % cy]
        cur = [0.0] * n
        # Column i = 1: north dependency only (SendE applies only when n > 1).
        cur[0] = prev[0] + w + (row[0][2] if n > 1 else 0.0) + row[0][3]
        for i in range(2, n + 1):
            comm_e, recv_n, send_e, comm_s = row[i - 1]
            west = cur[i - 2] + w + comm_e + recv_n
            north = prev[i - 1] + w + send_e + comm_s
            cur[i - 1] = west if west >= north else north
        prev = cur

    return prev[0], prev[n - 1]


def _count_residue(lo: int, hi: int, period: int, residue: int) -> int:
    """Number of integers in ``[lo, hi]`` congruent to ``residue`` mod ``period``."""
    if hi < lo:
        return 0
    return (hi - residue) // period - (lo - 1 - residue) // period


def _startp_diag(
    n: int,
    m: int,
    w: float,
    wpre: float,
    table: list[list[tuple[float, float, float, float]]],
    cx: int,
    cy: int,
) -> float:
    """``StartP(1, m)`` in closed form: the single path down column 1."""
    send_e = table[1 % cx][0][2] if n > 1 else 0.0  # SendE is j-independent
    total = wpre
    for jm in range(cy):
        count = _count_residue(2, m, cy, jm)
        if count:
            total += count * (w + send_e + table[1 % cx][jm][3])
    return total


def _startp_homogeneous(
    n: int,
    m: int,
    w: float,
    wpre: float,
    costs: tuple[float, float, float, float],
) -> tuple[float, float]:
    """Closed-form ``StartP`` corners for position-independent costs.

    Every monotone path from ``(1, 1)`` to ``(n, m)`` takes ``n - 1`` east
    and ``m - 1`` south steps; the only path-dependent term is the
    ``ReceiveN`` earned by east steps taken below row 1.  Since ``ReceiveN``
    is non-negative, the maximising path descends first and then traverses
    east, which yields the expressions below.
    """
    comm_e, recv_n, send_e, comm_s = costs
    south = w + (send_e if n > 1 else 0.0) + comm_s
    tdiag = wpre + (m - 1) * south
    if m == 1:
        return tdiag, wpre + (n - 1) * (w + comm_e)
    return tdiag, tdiag + (n - 1) * (w + comm_e + recv_n)


def _startp_periodic(
    n: int,
    m: int,
    w: float,
    wpre: float,
    table: list[list[tuple[float, float, float, float]]],
    cx: int,
    cy: int,
) -> tuple[float, float] | None:
    """Period-folded ``StartP`` for multi-core (periodic-cost) grids.

    Folds each axis down to ``_FOLD_BASE_PERIODS`` cost periods (preserving
    the residue of the grid dimension, so the folded grid sees exactly the
    same cost classes), measures the per-period growth of ``StartP(n, m)``
    in each direction, verifies the growth is linear (vanishing second
    differences and cross term), and extrapolates.  Returns ``None`` when
    the grid is too small to fold, the folded walks would cost more than the
    exact one, or the linearity verification fails.
    """
    base = _FOLD_BASE_PERIODS
    n0 = n if n <= (base + 2) * cx else base * cx + (n - base * cx) % cx
    m0 = m if m <= (base + 2) * cy else base * cy + (m - base * cy) % cy
    kx = (n - n0) // cx
    ky = (m - m0) // cy
    if kx == 0 and ky == 0:
        return None
    evaluations = 1 + (2 if kx else 0) + (2 if ky else 0) + (1 if kx and ky else 0)
    if evaluations * (n0 + 2 * cx) * (m0 + 2 * cy) >= n * m:
        return None

    def corner(a: int, b: int) -> float:
        return _startp_exact(n0 + a * cx, m0 + b * cy, w, wpre, table, cx, cy)[1]

    f00 = corner(0, 0)
    tolerance = _FOLD_REL_TOL * max(1.0, abs(f00))
    dx = dy = 0.0
    if kx:
        f10 = corner(1, 0)
        dx = f10 - f00
        if abs((corner(2, 0) - f10) - dx) > tolerance:
            return None
    if ky:
        f01 = corner(0, 1)
        dy = f01 - f00
        if abs((corner(0, 2) - f01) - dy) > tolerance:
            return None
    if kx and ky and abs(corner(1, 1) - (f00 + dx + dy)) > tolerance:
        return None

    tfull = f00 + kx * dx + ky * dy
    return _startp_diag(n, m, w, wpre, table, cx, cy), tfull


def _fill_heterogeneity_extras(
    platform: Platform,
    grid: ProcessorGrid,
    mapping: CoreMapping,
    w: float,
    wpre: float,
) -> tuple[float, float]:
    """Bounded-heterogeneity corrections ``(extra_diag, extra_full)``.

    With per-node speed multipliers the wavefront's progress across each
    diagonal is governed by that diagonal's *slowest* rank: every monotone
    path from ``(1, 1)`` to ``(n, m)`` performs exactly one tile per
    wavefront diagonal, so the critical path pays at least
    ``W * max_mult(d)`` on diagonal ``d``.  The correction therefore adds
    ``W * (max_mult(d) - 1)`` per diagonal to the full-fill time - and, for
    the diagonal-fill time, the multipliers actually on the column-1 path -
    on top of the homogeneous evaluation (which already charged ``W`` per
    step).  A trivial profile contributes exactly 0.0, preserving the
    homogeneous results bit for bit.
    """
    profile = platform.speed_profile
    assert profile is not None
    diag_mults = diagonal_multipliers(profile, grid, mapping)
    col_mults = column_multipliers(profile, grid, mapping)
    extra_diag = wpre * (col_mults[0] - 1.0) + w * sum(
        mult - 1.0 for mult in col_mults[1:]
    )
    extra_full = wpre * (diag_mults[0] - 1.0) + w * sum(
        mult - 1.0 for mult in diag_mults[1:]
    )
    return extra_diag, extra_full


def _require_analytic_supported(platform: Platform) -> None:
    """Reject simulator-only scenarios instead of silently mispricing them.

    Time-varying slowdown windows change compute costs with *event times*,
    which no closed-form path expression can honour; the event simulator is
    the only backend that prices them.
    """
    profile = platform.speed_profile
    if profile is not None and profile.has_windows:
        raise ValueError(
            "time-varying slowdown windows are a simulator-only scenario; "
            "use the simulator backend (see docs/faults.md)"
        )


def _fault_inflation(platform: Platform) -> float:
    """Deterministic checkpoint-dump stretch of the platform's fault model.

    Exactly 1.0 on fault-free platforms (and on fault models that never
    checkpoint), preserving the homogeneous results bit for bit.
    """
    if platform.faults is None:
        return 1.0
    return platform.faults.checkpoint_inflation()


def fill_times(
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    core_mapping: CoreMapping | None = None,
    *,
    method: str = "auto",
) -> FillTimes:
    """Evaluate the ``StartP`` recurrence (equations (r2a)-(r3b)).

    The recurrence is evaluated for a sweep originating at the ``(1, 1)``
    corner; because the work per tile is homogeneous the fill time is the
    same whichever corner a sweep actually starts from (Section 4.2).  On
    multi-core platforms the per-position communication costs follow the
    Table 6 on-chip/off-node classification.

    ``method`` selects the evaluator: ``"auto"``/``"fast"`` use the
    closed-form (single-core) or period-folded (multi-core) fast path with
    an automatic fallback to the exact walk, ``"exact"`` always walks the
    full grid.  The fast path is numerically equivalent to the exact
    recurrence (within ~1e-12 relative floating-point reassociation noise).
    """
    if method not in FILL_METHODS:
        raise ValueError(f"method must be one of {FILL_METHODS}, got {method!r}")
    _require_analytic_supported(platform)
    mapping = resolve_core_mapping(platform, core_mapping)
    n, m = grid.n, grid.m
    w = spec.work_per_tile(grid, platform)
    wpre = spec.pre_work_per_tile(grid, platform)
    inflation = platform.noise_inflation()
    if inflation != 1.0:  # repro: noqa[RPR004] exactly 1.0 on homogeneous platforms; fast path preserves bit-for-bit identity
        # Background noise stretches every compute operation; the analytic
        # model charges the mean factor (see repro.core.hetero).
        w *= inflation
        wpre *= inflation
    dump = _fault_inflation(platform)
    if dump != 1.0:  # repro: noqa[RPR004] exactly 1.0 on fault-free platforms; fast path preserves bit-for-bit identity
        # Periodic checkpoint dumps stretch every compute operation by the
        # duty-cycle factor 1 + cost/interval (see repro.core.faults).
        w *= dump
        wpre *= dump
    table, multicore = _fill_cost_table(spec, platform, grid, mapping)
    cx, cy = len(table), len(table[0])

    if method == "exact":
        tdiag, tfull = _startp_exact(n, m, w, wpre, table, cx, cy)
    elif not multicore:
        tdiag, tfull = _startp_homogeneous(n, m, w, wpre, table[0][0])
    else:
        folded = _startp_periodic(n, m, w, wpre, table, cx, cy)
        if folded is None:
            tdiag, tfull = _startp_exact(n, m, w, wpre, table, cx, cy)
        else:
            tdiag, tfull = folded

    # The computation portion is path-independent: every monotone path to a
    # corner takes the same number of steps, each contributing one W.
    tdiag_work = wpre + (m - 1) * w
    tfull_work = wpre + (n + m - 2) * w

    profile = platform.speed_profile
    if profile is not None and not profile.is_trivial:
        # Bounded-heterogeneity correction: the slowest rank on each
        # wavefront diagonal governs the recurrence (pure extra work, so it
        # raises the fill times and their work portions by the same amount).
        extra_diag, extra_full = _fill_heterogeneity_extras(
            platform, grid, mapping, w, wpre
        )
        tdiag += extra_diag
        tfull += extra_full
        tdiag_work += extra_diag
        tfull_work += extra_full

    return FillTimes(
        tdiagfill=tdiag,
        tfullfill=tfull,
        tdiagfill_work=tdiag_work,
        tfullfill_work=tfull_work,
    )


def stack_time(
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    core_mapping: CoreMapping | None = None,
) -> StackTime:
    """Evaluate equation (r4), the time to process one stack of tiles.

    All four boundary communications use off-node costs (the stack is
    processed at the rate of the slowest communication in each direction);
    on multi-core nodes the Table 6 contention penalty is added.

    On heterogeneous platforms the steady-state stack advances at the rate
    of the machine's slowest rank (every rank is coupled to its neighbours
    each tile), so the per-tile work is scaled by the profile's maximum
    multiplier; background noise scales it by the mean inflation factor.
    """
    _require_analytic_supported(platform)
    w = spec.work_per_tile(grid, platform)
    wpre = spec.pre_work_per_tile(grid, platform)
    inflation = platform.noise_inflation()
    if inflation != 1.0:  # repro: noqa[RPR004] exactly 1.0 on homogeneous platforms; fast path preserves bit-for-bit identity
        w *= inflation
        wpre *= inflation
    dump = _fault_inflation(platform)
    if dump != 1.0:  # repro: noqa[RPR004] exactly 1.0 on fault-free platforms; fast path preserves bit-for-bit identity
        w *= dump
        wpre *= dump
    profile = platform.speed_profile
    if profile is not None and not profile.is_trivial:
        mapping = resolve_core_mapping(platform, core_mapping)
        slowest = max_multiplier(profile, grid, mapping)
        if slowest != 1.0:  # repro: noqa[RPR004] trivial profile yields exactly 1.0; skip to keep identity
            w *= slowest
            wpre *= slowest
    tiles = spec.tiles_per_stack()
    comm = stack_comm_costs(platform, spec, grid, core_mapping)
    per_tile = comm.per_tile_comm + w + wpre
    total = per_tile * tiles - wpre
    work = (w + wpre) * tiles - wpre
    return StackTime(
        total=total,
        work=work,
        per_tile_comm=comm.per_tile_comm,
        tiles=tiles,
        comm_costs=comm,
    )


def iteration_prediction(
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    core_mapping: CoreMapping | None = None,
    *,
    method: str = "auto",
) -> IterationPrediction:
    """Evaluate the full Table 5 / Table 6 model for one iteration.

    ``method`` selects the ``StartP`` evaluator (see :func:`fill_times`).
    """
    mapping = resolve_core_mapping(platform, core_mapping)
    fill = fill_times(spec, platform, grid, mapping, method=method)
    stack = stack_time(spec, platform, grid, mapping)
    nonwf_work, nonwf_comm = spec.nonwavefront.evaluate_components(platform, spec, grid)
    # The non-wavefront phase (stencil / custom compute) is executed by
    # every rank before the inter-iteration synchronisation, so its
    # critical path runs at the machine's slowest rank - the same bounded
    # treatment as the stack - and is stretched by background noise like
    # any compute.  Both factors are exactly 1.0 on homogeneous platforms.
    inflation = platform.noise_inflation()
    if inflation != 1.0:  # repro: noqa[RPR004] exactly 1.0 on homogeneous platforms; fast path preserves bit-for-bit identity
        nonwf_work *= inflation
    dump = _fault_inflation(platform)
    if dump != 1.0:  # repro: noqa[RPR004] exactly 1.0 on fault-free platforms; fast path preserves bit-for-bit identity
        nonwf_work *= dump
    profile = platform.speed_profile
    if profile is not None and not profile.is_trivial:
        slowest = max_multiplier(profile, grid, mapping)
        if slowest != 1.0:  # repro: noqa[RPR004] trivial profile yields exactly 1.0; skip to keep identity
            nonwf_work *= slowest
    trework = 0.0
    faults = platform.faults
    if faults is not None and faults.fails:
        # Bounded expected-rework correction: E[failures] x mean rework
        # over the iteration's fault-free span, first-order and guarded
        # (rare-failure regime only; see docs/faults.md).
        base_time = (
            spec.ndiag * fill.tdiagfill
            + spec.nfull * fill.tfullfill
            + spec.nsweeps * stack.total
            + nonwf_work
            + nonwf_comm
        )
        rework_guard(faults, base_time)
        trework = expected_rework_us(faults, base_time)
    return IterationPrediction(
        spec_name=spec.name,
        platform_name=platform.name,
        grid=grid,
        core_mapping=mapping,
        w=spec.work_per_tile(grid, platform),
        wpre=spec.pre_work_per_tile(grid, platform),
        fill=fill,
        stack=stack,
        tnonwavefront=nonwf_work + nonwf_comm,
        tnonwavefront_work=nonwf_work,
        nsweeps=spec.nsweeps,
        nfull=spec.nfull,
        ndiag=spec.ndiag,
        trework=trework,
    )
