"""The plug-and-play reusable LogGP model (Table 5 of the paper).

Given a :class:`~repro.apps.base.WavefrontSpec` (the Table 3 application
parameters), a :class:`~repro.core.loggp.Platform` and a processor grid, this
module evaluates the Table 5 equations:

``(r1a)``  ``Wpre = Wg,pre * Htile * Nx/n * Ny/m``
``(r1b)``  ``W    = Wg     * Htile * Nx/n * Ny/m``
``(r2a)``  ``StartP(1,1) = Wpre``
``(r2b)``  ``StartP(i,j) = max(StartP(i-1,j) + W + TotalCommE + ReceiveN,
                               StartP(i,j-1) + W + SendE + TotalCommS)``
``(r3a)``  ``Tdiagfill = StartP(1,m)``
``(r3b)``  ``Tfullfill = StartP(n,m)``
``(r4)``   ``Tstack = (ReceiveW + ReceiveN + W + SendE + SendS + Wpre)
                      * Nz/Htile - Wpre``
``(r5)``   ``Titer = ndiag*Tdiagfill + nfull*Tfullfill + nsweeps*Tstack
                     + Tnonwavefront``

The multi-core extensions of Table 6 are applied through
:mod:`repro.core.multicore`: the ``StartP`` recurrence uses on-chip costs for
intra-node hops, and the stack term adds the shared-bus contention penalty.

In addition to the iteration time the model reports the breakdown used by the
Section 5 analyses: computation vs communication time (Figure 11) and the
pipeline-fill component (Figure 12).  The split follows the paper's
definition - "the communication component ... is derived from the Send,
Receive, TotalComm and Tallreduce terms in the model; the computation
component is the rest".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import WavefrontSpec
from repro.core.decomposition import CoreMapping, ProcessorGrid
from repro.core.loggp import Platform
from repro.core.multicore import (
    StackCommCosts,
    resolve_core_mapping,
    stack_comm_costs,
)
from repro.core.comm import CommunicationCosts

__all__ = [
    "FillTimes",
    "StackTime",
    "IterationPrediction",
    "fill_times",
    "stack_time",
    "iteration_prediction",
]


@dataclass(frozen=True)
class FillTimes:
    """Pipeline fill times for a sweep starting at a corner of the grid.

    ``tdiagfill`` is the time for the sweep to reach the corner on the main
    diagonal of the wavefronts (``StartP(1, m)``); ``tfullfill`` the time to
    reach the opposite corner (``StartP(n, m)``).  The ``*_work`` fields give
    the computation portion of the corresponding critical path, used for the
    bottleneck breakdown.
    """

    tdiagfill: float
    tfullfill: float
    tdiagfill_work: float
    tfullfill_work: float


@dataclass(frozen=True)
class StackTime:
    """Stack-processing time (equation (r4)) and its computation portion."""

    total: float
    work: float
    per_tile_comm: float
    tiles: float
    comm_costs: StackCommCosts


@dataclass(frozen=True)
class IterationPrediction:
    """Model outputs for a single iteration of the wavefront computation."""

    spec_name: str
    platform_name: str
    grid: ProcessorGrid
    core_mapping: CoreMapping
    w: float
    wpre: float
    fill: FillTimes
    stack: StackTime
    tnonwavefront: float
    tnonwavefront_work: float
    nsweeps: int
    nfull: int
    ndiag: int

    @property
    def tdiagfill(self) -> float:
        return self.fill.tdiagfill

    @property
    def tfullfill(self) -> float:
        return self.fill.tfullfill

    @property
    def tstack(self) -> float:
        return self.stack.total

    @property
    def pipeline_fill_time(self) -> float:
        """Total pipeline-fill time per iteration (Figure 12's quantity)."""
        return self.ndiag * self.fill.tdiagfill + self.nfull * self.fill.tfullfill

    @property
    def time_per_iteration(self) -> float:
        """Equation (r5): the time for one iteration, microseconds."""
        return (
            self.ndiag * self.fill.tdiagfill
            + self.nfull * self.fill.tfullfill
            + self.nsweeps * self.stack.total
            + self.tnonwavefront
        )

    @property
    def computation_per_iteration(self) -> float:
        """Computation component of the iteration time (Figure 11)."""
        return (
            self.ndiag * self.fill.tdiagfill_work
            + self.nfull * self.fill.tfullfill_work
            + self.nsweeps * self.stack.work
            + self.tnonwavefront_work
        )

    @property
    def communication_per_iteration(self) -> float:
        """Communication component of the iteration time (Figure 11)."""
        return self.time_per_iteration - self.computation_per_iteration


def fill_times(
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    core_mapping: CoreMapping | None = None,
) -> FillTimes:
    """Evaluate the ``StartP`` recurrence (equations (r2a)-(r3b)).

    The recurrence is evaluated for a sweep originating at the ``(1, 1)``
    corner; because the work per tile is homogeneous the fill time is the
    same whichever corner a sweep actually starts from (Section 4.2).  On
    multi-core platforms the per-position communication costs follow the
    Table 6 on-chip/off-node classification.
    """
    mapping = resolve_core_mapping(platform, core_mapping)
    n, m = grid.n, grid.m
    w = spec.work_per_tile(grid, platform)
    wpre = spec.pre_work_per_tile(grid, platform)

    ew_bytes = spec.message_size_ew(grid)
    ns_bytes = spec.message_size_ns(grid)
    multicore = platform.is_multicore and mapping.cores_per_node > 1

    ew_off = CommunicationCosts.for_message(platform, ew_bytes, on_chip=False)
    ns_off = CommunicationCosts.for_message(platform, ns_bytes, on_chip=False)
    if multicore:
        ew_on = CommunicationCosts.for_message(platform, ew_bytes, on_chip=True)
        ns_on = CommunicationCosts.for_message(platform, ns_bytes, on_chip=True)
    else:
        ew_on, ns_on = ew_off, ns_off

    # StartP and its computation-only portion, stored as flat row-major
    # arrays indexed by (j-1) * n + (i-1).
    start = [0.0] * (n * m)
    start_work = [0.0] * (n * m)

    # Position-dependent costs repeat with period (Cx, Cy); memoise them.
    cost_cache: dict[tuple[bool, bool, bool, bool], tuple[float, float, float, float]] = {}

    def costs_at(i: int, j: int) -> tuple[float, float, float, float]:
        if multicore:
            key = (
                mapping.comm_from_west_on_chip(i, j),
                mapping.receive_north_on_chip(i, j),
                mapping.send_east_on_chip(i, j),
                mapping.send_south_on_chip(i, j),
            )
        else:
            key = (False, False, False, False)
        cached = cost_cache.get(key)
        if cached is None:
            comm_e = (ew_on if key[0] else ew_off).total
            recv_n = (ns_on if key[1] else ns_off).receive
            send_e = (ew_on if key[2] else ew_off).send
            comm_s = (ns_on if key[3] else ns_off).total
            cached = (comm_e, recv_n, send_e, comm_s)
            cost_cache[key] = cached
        return cached

    start[0] = wpre
    start_work[0] = wpre

    for j in range(1, m + 1):
        row_base = (j - 1) * n
        for i in range(1, n + 1):
            if i == 1 and j == 1:
                continue
            idx = row_base + (i - 1)
            comm_e, recv_n, send_e, comm_s = costs_at(i, j)
            west_total = -1.0
            west_work = 0.0
            if i > 1:
                west_idx = idx - 1
                extra = comm_e + (recv_n if j > 1 else 0.0)
                west_total = start[west_idx] + w + extra
                west_work = start_work[west_idx] + w
            north_total = -1.0
            north_work = 0.0
            if j > 1:
                north_idx = idx - n
                extra = (send_e if n > 1 else 0.0) + comm_s
                north_total = start[north_idx] + w + extra
                north_work = start_work[north_idx] + w
            if west_total >= north_total:
                start[idx] = west_total
                start_work[idx] = west_work
            else:
                start[idx] = north_total
                start_work[idx] = north_work

    diag_idx = (m - 1) * n  # position (1, m)
    full_idx = (m - 1) * n + (n - 1)  # position (n, m)
    return FillTimes(
        tdiagfill=start[diag_idx],
        tfullfill=start[full_idx],
        tdiagfill_work=start_work[diag_idx],
        tfullfill_work=start_work[full_idx],
    )


def stack_time(
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    core_mapping: CoreMapping | None = None,
) -> StackTime:
    """Evaluate equation (r4), the time to process one stack of tiles.

    All four boundary communications use off-node costs (the stack is
    processed at the rate of the slowest communication in each direction);
    on multi-core nodes the Table 6 contention penalty is added.
    """
    w = spec.work_per_tile(grid, platform)
    wpre = spec.pre_work_per_tile(grid, platform)
    tiles = spec.tiles_per_stack()
    comm = stack_comm_costs(platform, spec, grid, core_mapping)
    per_tile = comm.per_tile_comm + w + wpre
    total = per_tile * tiles - wpre
    work = (w + wpre) * tiles - wpre
    return StackTime(
        total=total,
        work=work,
        per_tile_comm=comm.per_tile_comm,
        tiles=tiles,
        comm_costs=comm,
    )


def iteration_prediction(
    spec: WavefrontSpec,
    platform: Platform,
    grid: ProcessorGrid,
    core_mapping: CoreMapping | None = None,
) -> IterationPrediction:
    """Evaluate the full Table 5 / Table 6 model for one iteration."""
    mapping = resolve_core_mapping(platform, core_mapping)
    fill = fill_times(spec, platform, grid, mapping)
    stack = stack_time(spec, platform, grid, mapping)
    nonwf_work, nonwf_comm = spec.nonwavefront.evaluate_components(platform, spec, grid)
    return IterationPrediction(
        spec_name=spec.name,
        platform_name=platform.name,
        grid=grid,
        core_mapping=mapping,
        w=spec.work_per_tile(grid, platform),
        wpre=spec.pre_work_per_tile(grid, platform),
        fill=fill,
        stack=stack,
        tnonwavefront=nonwf_work + nonwf_comm,
        tnonwavefront_work=nonwf_work,
        nsweeps=spec.nsweeps,
        nfull=spec.nfull,
        ndiag=spec.ndiag,
    )
