"""Shared memoisation helpers.

The prediction engine memoises on frozen value objects (platforms, specs,
grids, core mappings).  User subclasses may be unhashable, so cache entry
points need a graceful uncached fallback - while TypeErrors raised by the
computation itself must still propagate unchanged (and without silently
re-running the computation).  This helper centralises that control flow.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Callable, List, TypeVar

_R = TypeVar("_R")

__all__ = [
    "call_with_unhashable_fallback",
    "cached_field_hash",
    "register_cache_clearer",
    "clear_registered_caches",
]


def cached_field_hash(obj) -> int:
    """A frozen dataclass's field hash, computed once and memoised on ``obj``.

    Deeply-nested frozen value objects (specs, platforms) are used as cache
    keys throughout the library; the generated ``__hash__`` re-walks the
    whole field tree on every dictionary operation, which dominates batch
    evaluation at design-matrix scale.  Instances are immutable, so the
    value is computed from the same compared-field tuple the generated hash
    uses and stashed on the instance (``object.__setattr__`` bypasses the
    frozen guard; ``dataclasses.replace`` builds fresh instances, so the
    memo can never go stale).

    >>> from dataclasses import dataclass
    >>> @dataclass(frozen=True)
    ... class Point:
    ...     x: int
    ...     y: int
    ...     def __hash__(self) -> int:
    ...         return cached_field_hash(self)
    >>> hash(Point(1, 2)) == hash(Point(1, 2))
    True
    """
    instance_dict = obj.__dict__
    value = instance_dict.get("_cached_field_hash")
    if value is None:
        value = hash(
            tuple(getattr(obj, field.name) for field in fields(obj) if field.compare)
        )
        # Writing through __dict__ bypasses the frozen-dataclass guard.
        instance_dict["_cached_field_hash"] = value
    return value

#: Clearers registered by every module that memoises model inputs.  The
#: public :func:`repro.core.predictor.clear_prediction_cache` drains this
#: registry so "clear the caches" means *all* of them - the predict memo,
#: the communication-cost memo and the simulator-result memo - which is the
#: contract ``tests/test_conformance.py`` pins down.
_CACHE_CLEARERS: List[Callable[[], None]] = []


def register_cache_clearer(clearer: Callable[[], None]) -> Callable[[], None]:
    """Register a zero-argument cache-clearing callable (idempotent).

    Returns the callable so it can be used as a decorator.  Modules register
    at import time; a cache that was never imported has nothing to clear.
    """
    if clearer not in _CACHE_CLEARERS:
        _CACHE_CLEARERS.append(clearer)
    return clearer


def clear_registered_caches() -> None:
    """Invoke every registered cache clearer."""
    for clearer in _CACHE_CLEARERS:
        clearer()


def call_with_unhashable_fallback(
    cached: Callable[..., _R],
    uncached: Callable[..., _R],
    *args,
) -> _R:
    """``cached(*args)``, falling back to ``uncached(*args)`` on unhashable args.

    ``cached`` is an ``lru_cache``-wrapped function, which raises TypeError
    while building its key if any argument is unhashable - before the wrapped
    computation runs.  A TypeError raised *by the computation* is
    distinguished by probing ``hash(args)``: if the key hashes fine, the
    error came from the computation and is re-raised as-is.
    """
    try:
        return cached(*args)
    except TypeError:
        try:
            hash(args)
        except TypeError:
            return uncached(*args)
        raise  # the TypeError came from the computation, not the cache key
