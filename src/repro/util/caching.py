"""Shared memoisation helpers.

The prediction engine memoises on frozen value objects (platforms, specs,
grids, core mappings).  User subclasses may be unhashable, so cache entry
points need a graceful uncached fallback - while TypeErrors raised by the
computation itself must still propagate unchanged (and without silently
re-running the computation).  This helper centralises that control flow.
"""

from __future__ import annotations

from typing import Callable, List, TypeVar

_R = TypeVar("_R")

__all__ = [
    "call_with_unhashable_fallback",
    "register_cache_clearer",
    "clear_registered_caches",
]

#: Clearers registered by every module that memoises model inputs.  The
#: public :func:`repro.core.predictor.clear_prediction_cache` drains this
#: registry so "clear the caches" means *all* of them - the predict memo,
#: the communication-cost memo and the simulator-result memo - which is the
#: contract ``tests/test_conformance.py`` pins down.
_CACHE_CLEARERS: List[Callable[[], None]] = []


def register_cache_clearer(clearer: Callable[[], None]) -> Callable[[], None]:
    """Register a zero-argument cache-clearing callable (idempotent).

    Returns the callable so it can be used as a decorator.  Modules register
    at import time; a cache that was never imported has nothing to clear.
    """
    if clearer not in _CACHE_CLEARERS:
        _CACHE_CLEARERS.append(clearer)
    return clearer


def clear_registered_caches() -> None:
    """Invoke every registered cache clearer."""
    for clearer in _CACHE_CLEARERS:
        clearer()


def call_with_unhashable_fallback(
    cached: Callable[..., _R],
    uncached: Callable[..., _R],
    *args,
) -> _R:
    """``cached(*args)``, falling back to ``uncached(*args)`` on unhashable args.

    ``cached`` is an ``lru_cache``-wrapped function, which raises TypeError
    while building its key if any argument is unhashable - before the wrapped
    computation runs.  A TypeError raised *by the computation* is
    distinguished by probing ``hash(args)``: if the key hashes fine, the
    error came from the computation and is re-raised as-is.
    """
    try:
        return cached(*args)
    except TypeError:
        try:
            hash(args)
        except TypeError:
            return uncached(*args)
        raise  # the TypeError came from the computation, not the cache key
