"""Shared memoisation helpers.

The prediction engine memoises on frozen value objects (platforms, specs,
grids, core mappings).  User subclasses may be unhashable, so cache entry
points need a graceful uncached fallback - while TypeErrors raised by the
computation itself must still propagate unchanged (and without silently
re-running the computation).  This helper centralises that control flow.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_R = TypeVar("_R")

__all__ = ["call_with_unhashable_fallback"]


def call_with_unhashable_fallback(
    cached: Callable[..., _R],
    uncached: Callable[..., _R],
    *args,
) -> _R:
    """``cached(*args)``, falling back to ``uncached(*args)`` on unhashable args.

    ``cached`` is an ``lru_cache``-wrapped function, which raises TypeError
    while building its key if any argument is unhashable - before the wrapped
    computation runs.  A TypeError raised *by the computation* is
    distinguished by probing ``hash(args)``: if the key hashes fine, the
    error came from the computation and is re-raised as-is.
    """
    try:
        return cached(*args)
    except TypeError:
        try:
            hash(args)
        except TypeError:
            return uncached(*args)
        raise  # the TypeError came from the computation, not the cache key
