"""Minimal plain-text table rendering.

The benchmark harness regenerates each of the paper's tables and figures as
rows of numbers printed to stdout; this module provides the shared
formatting so that every bench produces consistently aligned, readable
output (and so that tests can parse it back if needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class Table:
    """A small mutable table builder used by analyses and benches.

    Example
    -------
    >>> t = Table(["P", "time"], title="scaling")
    >>> t.add_row(1024, 10.0)
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str | None = None
    precision: int = 4
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> list[Any]:
        """Return the values of column ``name`` in row order."""
        try:
            idx = list(self.headers).index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        return format_table(
            self.headers, self.rows, precision=self.precision, title=self.title
        )

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Return the table as a list of ``{header: value}`` dictionaries."""
        return [dict(zip(self.headers, row)) for row in self.rows]
