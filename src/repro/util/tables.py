"""Minimal plain-text table rendering.

The benchmark harness regenerates each of the paper's tables and figures as
rows of numbers printed to stdout; this module provides the shared
formatting so that every bench produces consistently aligned, readable
output (and so that tests can parse it back if needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:  # repro: noqa[RPR004] exact zero prints as "0"; near-zero must keep its magnitude
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_markdown(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    precision: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as a GitHub-flavoured Markdown table.

    Cells are formatted with the same rules as :func:`format_table`, so the
    plain-text and Markdown views of a table agree digit for digit - the
    campaign report layer relies on this determinism for byte-identical
    re-renders.

    >>> print(format_markdown(["P", "time"], [[16, 2.5], [64, 1.25]]))
    | P | time |
    | --- | --- |
    | 16 | 2.5000 |
    | 64 | 1.2500 |
    """
    str_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("| " + " | ".join("---" for _ in headers) + " |")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render ``rows`` as CSV text (trailing newline included).

    Floats keep full precision (``repr``) so figure data files round-trip;
    everything else uses ``str``.

    >>> format_csv(["P", "days"], [[1024, 0.5]])
    'P,days\\n1024,0.5\\n'
    """
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([repr(c) if isinstance(c, float) else str(c) for c in row])
    return buffer.getvalue()


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class Table:
    """A small mutable table builder used by analyses and benches.

    Example
    -------
    >>> t = Table(["P", "time"], title="scaling")
    >>> t.add_row(1024, 10.0)
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str | None = None
    precision: int = 4
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> list[Any]:
        """Return the values of column ``name`` in row order."""
        try:
            idx = list(self.headers).index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        return format_table(
            self.headers, self.rows, precision=self.precision, title=self.title
        )

    def render_markdown(self) -> str:
        """The table as GitHub-flavoured Markdown (title omitted).

        >>> t = Table(["P", "time"], title="scaling")
        >>> t.add_row(16, 1.0)
        >>> t.render_markdown().splitlines()[0]
        '| P | time |'
        """
        return format_markdown(self.headers, self.rows, precision=self.precision)

    def render_csv(self) -> str:
        """The table as CSV text (full-precision floats)."""
        return format_csv(self.headers, self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Return the table as a list of ``{header: value}`` dictionaries."""
        return [dict(zip(self.headers, row)) for row in self.rows]
