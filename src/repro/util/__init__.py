"""Shared utilities: unit conversions, table rendering, parameter sweeps.

These helpers are deliberately dependency-free (except numpy) so that they
can be used from every other subpackage without creating import cycles.
"""

from repro.util.units import (
    MICROSECONDS_PER_SECOND,
    SECONDS_PER_DAY,
    SECONDS_PER_MONTH,
    days_to_seconds,
    microseconds,
    seconds,
    seconds_to_days,
    seconds_to_months,
    us_to_seconds,
)
from repro.util.tables import Table, format_table
from repro.util.sweep import ParameterSweep, geometric_range, powers_of_two

__all__ = [
    "MICROSECONDS_PER_SECOND",
    "SECONDS_PER_DAY",
    "SECONDS_PER_MONTH",
    "days_to_seconds",
    "microseconds",
    "seconds",
    "seconds_to_days",
    "seconds_to_months",
    "us_to_seconds",
    "Table",
    "format_table",
    "ParameterSweep",
    "geometric_range",
    "powers_of_two",
]
