"""Time unit conventions and conversions.

All analytic model equations in :mod:`repro.core` operate in **microseconds**,
matching the LogGP parameter values reported in the paper (Table 2).
Higher-level analyses (Section 5 of the paper) report results in seconds,
days, or "time steps solved per problem per month"; the helpers here perform
those conversions in one place so that no magic constants leak into the
analysis code.
"""

from __future__ import annotations

#: Number of microseconds in one second.
MICROSECONDS_PER_SECOND: float = 1.0e6

#: Number of seconds in one day.
SECONDS_PER_DAY: float = 24.0 * 3600.0

#: Number of seconds in one (30-day) month, the unit used by Figure 7 of the
#: paper ("time steps solved per problem per month").
SECONDS_PER_MONTH: float = 30.0 * SECONDS_PER_DAY


def microseconds(value: float) -> float:
    """Identity helper used to document that ``value`` is in microseconds."""
    return float(value)


def seconds(value: float) -> float:
    """Identity helper used to document that ``value`` is in seconds."""
    return float(value)


def us_to_seconds(value_us: float) -> float:
    """Convert microseconds to seconds."""
    return float(value_us) / MICROSECONDS_PER_SECOND


def seconds_to_us(value_s: float) -> float:
    """Convert seconds to microseconds."""
    return float(value_s) * MICROSECONDS_PER_SECOND


def seconds_to_days(value_s: float) -> float:
    """Convert seconds to days."""
    return float(value_s) / SECONDS_PER_DAY


def days_to_seconds(value_days: float) -> float:
    """Convert days to seconds."""
    return float(value_days) * SECONDS_PER_DAY


def seconds_to_months(value_s: float) -> float:
    """Convert seconds to 30-day months."""
    return float(value_s) / SECONDS_PER_MONTH


def us_to_days(value_us: float) -> float:
    """Convert microseconds directly to days."""
    return seconds_to_days(us_to_seconds(value_us))


def rate_per_month(time_per_item_s: float) -> float:
    """Number of items completed per 30-day month given seconds per item.

    Used by the partition-throughput analysis (Figure 7): the number of time
    steps solved per month is ``rate_per_month(seconds per time step)``.
    """
    if time_per_item_s <= 0.0:
        raise ValueError("time_per_item_s must be positive")
    return SECONDS_PER_MONTH / float(time_per_item_s)
