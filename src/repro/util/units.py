"""Time unit conventions and conversions.

All analytic model equations in :mod:`repro.core` operate in **microseconds**,
matching the LogGP parameter values reported in the paper (Table 2).
Higher-level analyses (Section 5 of the paper) report results in seconds,
days, or "time steps solved per problem per month"; the helpers here perform
those conversions in one place so that no magic constants leak into the
analysis code.
"""

from __future__ import annotations

#: Number of microseconds in one second.
MICROSECONDS_PER_SECOND: float = 1.0e6

#: Number of seconds in one day.
SECONDS_PER_DAY: float = 24.0 * 3600.0

#: Number of seconds in one (30-day) month, the unit used by Figure 7 of the
#: paper ("time steps solved per problem per month").
SECONDS_PER_MONTH: float = 30.0 * SECONDS_PER_DAY


def microseconds(value: float) -> float:
    """Identity helper used to document that ``value`` is in microseconds."""
    return float(value)


def seconds(value: float) -> float:
    """Identity helper used to document that ``value`` is in seconds."""
    return float(value)


def us_to_seconds(value_us: float) -> float:
    """Convert microseconds to seconds."""
    return float(value_us) / MICROSECONDS_PER_SECOND


def seconds_to_us(value_s: float) -> float:
    """Convert seconds to microseconds."""
    return float(value_s) * MICROSECONDS_PER_SECOND


def seconds_to_days(value_s: float) -> float:
    """Convert seconds to days."""
    return float(value_s) / SECONDS_PER_DAY


def days_to_seconds(value_days: float) -> float:
    """Convert days to seconds."""
    return float(value_days) * SECONDS_PER_DAY


def seconds_to_months(value_s: float) -> float:
    """Convert seconds to 30-day months."""
    return float(value_s) / SECONDS_PER_MONTH


def us_to_days(value_us: float) -> float:
    """Convert microseconds directly to days."""
    return seconds_to_days(us_to_seconds(value_us))


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator``, or ``default`` for a zero denominator.

    The single sanctioned home of the zero-denominator guard: fraction-style
    metrics (relative error, computation fraction, pipeline fill) all reduce
    to "divide, but a degenerate denominator means a well-defined limit", and
    repeating a raw ``== 0.0`` float comparison at each call site is exactly
    the hazard lint rule RPR004 exists to catch.  Centralising it here keeps
    the exact-zero sentinel in one audited place.

    >>> safe_ratio(3.0, 4.0)
    0.75
    >>> safe_ratio(1.0, 0.0)
    0.0
    >>> safe_ratio(1.0, 0.0, default=1.0)
    1.0
    """
    denominator = float(denominator)
    if denominator == 0.0:  # repro: noqa[RPR004] exact-zero sentinel: this helper IS the sanctioned guard
        return float(default)
    return float(numerator) / denominator


def rate_per_month(time_per_item_s: float) -> float:
    """Number of items completed per 30-day month given seconds per item.

    Used by the partition-throughput analysis (Figure 7): the number of time
    steps solved per month is ``rate_per_month(seconds per time step)``.
    """
    if time_per_item_s <= 0.0:
        raise ValueError("time_per_item_s must be positive")
    return SECONDS_PER_MONTH / float(time_per_item_s)
