"""Parameter sweep helpers.

The paper's Section 5 analyses are parameter sweeps (over Htile, processor
count, partition size, cores per node, ...).  ``ParameterSweep`` provides a
tiny cartesian-product sweep abstraction used by :mod:`repro.analysis` and by
the benchmark harness, with optional ``concurrent.futures`` fan-out so
sweep-heavy studies can use every core of the analysis machine.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def powers_of_two(start: int, stop: int) -> list[int]:
    """Inclusive list of powers of two between ``start`` and ``stop``.

    Both endpoints must themselves be powers of two.  This matches the x-axes
    of Figures 6-11 in the paper (1024, 2048, ..., 131072 processors).
    """
    if start <= 0 or stop <= 0:
        raise ValueError("start and stop must be positive")
    if start & (start - 1) or stop & (stop - 1):
        raise ValueError("start and stop must be powers of two")
    if start > stop:
        raise ValueError("start must not exceed stop")
    values = []
    value = start
    while value <= stop:
        values.append(value)
        value *= 2
    return values


def _geometric_term(start: float, factor: float, k: int) -> float:
    """``start * factor**k`` without intermediate overflow.

    The exponent is split in three so that each partial power stays finite
    whenever the product itself is representable: a double spans at most
    ~2**2098 from the smallest subnormal to the largest finite value, so
    ``factor**(k/3)`` never exceeds ~2**700 for any reachable ``k``.
    """
    a = k // 3
    b = (k - a) // 2
    c = k - a - b
    return start * factor**a * factor**b * factor**c


def geometric_range(start: float, stop: float, factor: float = 2.0) -> list[float]:
    """Geometric progression from ``start`` up to (and including) ``stop``.

    Each term is computed as ``start * factor**k`` rather than by repeated
    multiplication, so long ranges carry no accumulated rounding drift and
    exact endpoints (e.g. ``start * 2**40``) are hit exactly.
    """
    if start <= 0 or stop <= 0:
        raise ValueError("start and stop must be positive")
    if factor <= 1.0:
        raise ValueError("factor must exceed 1")
    values: list[float] = []
    start = float(start)
    # Small epsilon so that exact endpoints survive floating-point noise.
    limit = stop * (1.0 + 1e-12)
    k = 0
    while True:
        value = _geometric_term(start, factor, k)
        if value > limit:
            break
        values.append(value)
        k += 1
    return values


def _apply_point(fn: Callable[..., Any], point: Mapping[str, Any]) -> Any:
    """Module-level ``fn(**point)`` helper, picklable for process pools."""
    return fn(**point)


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: Optional[int] = None,
    executor: str = "thread",
) -> list[_R]:
    """Order-preserving map with optional pool fan-out.

    ``workers=None`` (or 1) runs serially.  ``executor="process"`` fans out
    over a :class:`~concurrent.futures.ProcessPoolExecutor` - the only way to
    use several cores for the pure-Python model evaluation, which holds the
    GIL throughout; ``fn`` and the items must then be picklable (the analysis
    studies pass ``functools.partial`` over module-level helpers for exactly
    this reason).  ``executor="thread"`` shares the in-process prediction
    caches and suits callables that release the GIL (numpy kernels) or mix
    model evaluation with I/O, but yields no speedup for pure-Python work.
    """
    if executor not in ("thread", "process"):
        raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
    materialised = list(items)
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if workers is None or workers == 1 or len(materialised) <= 1:
        return [fn(item) for item in materialised]
    pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    with pool_cls(max_workers=workers) as pool:
        return list(pool.map(fn, materialised))


def unique_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: Optional[int] = None,
    executor: str = "thread",
) -> list[_R]:
    """Order-preserving map that evaluates each *distinct* item exactly once.

    Duplicate items (by equality; items must be hashable) share one
    evaluation - the batch prediction service uses this to deduplicate
    repeated configurations in a request list before fanning out to a pool
    via :func:`parallel_map`.  Unhashable items fall back to a plain
    :func:`parallel_map` with no deduplication.
    """
    materialised = list(items)
    try:
        seen: dict[Any, int] = {}
        positions = []
        distinct = []
        for item in materialised:
            index = seen.get(item)
            if index is None:
                index = len(distinct)
                seen[item] = index
                distinct.append(item)
            positions.append(index)
    except TypeError:
        return parallel_map(fn, materialised, workers, executor)
    results = parallel_map(fn, distinct, workers, executor)
    return [results[index] for index in positions]


@dataclass
class ParameterSweep:
    """Cartesian-product sweep over named parameter axes.

    Axes may be given as any iterable (lists, tuples, generators, ranges);
    they are materialised into tuples on construction, so generator axes are
    consumed exactly once and ``len``/re-iteration behave as expected.

    Example
    -------
    >>> sweep = ParameterSweep({"p": [4, 16], "htile": [1, 2]})
    >>> len(list(sweep))
    4
    """

    axes: Mapping[str, Sequence[Any]]
    fixed: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.axes = {name: tuple(values) for name, values in dict(self.axes).items()}
        self.fixed = dict(self.fixed)
        for name, values in self.axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {name!r} has no values")
        overlap = set(self.axes) & set(self.fixed)
        if overlap:
            raise ValueError(f"parameters {sorted(overlap)} appear in both axes and fixed")

    def __iter__(self) -> Iterator[dict[str, Any]]:
        names = list(self.axes.keys())
        for combo in itertools.product(*(self.axes[name] for name in names)):
            point = dict(self.fixed)
            point.update(dict(zip(names, combo)))
            yield point

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def run(
        self,
        fn: Callable[..., Any],
        *,
        workers: Optional[int] = None,
        executor: str = "thread",
    ) -> list[tuple[dict[str, Any], Any]]:
        """Apply ``fn(**point)`` to every sweep point, returning (point, result) pairs.

        ``workers=None`` (the default) evaluates serially, preserving the
        historical behaviour.  With ``workers=N`` the points are fanned out
        over a :mod:`concurrent.futures` pool - ``executor="process"`` for
        CPU-bound work such as the pure-Python model evaluation (``fn`` and
        the axis values must then be picklable), or ``executor="thread"``
        for callables that release the GIL or share the in-process
        prediction caches.  Results are returned in sweep order either way.
        """
        points = list(self)
        results = parallel_map(partial(_apply_point, fn), points, workers, executor)
        return list(zip(points, results))
