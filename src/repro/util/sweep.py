"""Parameter sweep helpers.

The paper's Section 5 analyses are parameter sweeps (over Htile, processor
count, partition size, cores per node, ...).  ``ParameterSweep`` provides a
tiny cartesian-product sweep abstraction used by :mod:`repro.analysis` and by
the benchmark harness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence


def powers_of_two(start: int, stop: int) -> list[int]:
    """Inclusive list of powers of two between ``start`` and ``stop``.

    Both endpoints must themselves be powers of two.  This matches the x-axes
    of Figures 6-11 in the paper (1024, 2048, ..., 131072 processors).
    """
    if start <= 0 or stop <= 0:
        raise ValueError("start and stop must be positive")
    if start & (start - 1) or stop & (stop - 1):
        raise ValueError("start and stop must be powers of two")
    if start > stop:
        raise ValueError("start must not exceed stop")
    values = []
    value = start
    while value <= stop:
        values.append(value)
        value *= 2
    return values


def geometric_range(start: float, stop: float, factor: float = 2.0) -> list[float]:
    """Geometric progression from ``start`` up to (and including) ``stop``."""
    if start <= 0 or stop <= 0:
        raise ValueError("start and stop must be positive")
    if factor <= 1.0:
        raise ValueError("factor must exceed 1")
    values = []
    value = float(start)
    # Small epsilon so that exact endpoints survive floating-point noise.
    while value <= stop * (1.0 + 1e-12):
        values.append(value)
        value *= factor
    return values


@dataclass
class ParameterSweep:
    """Cartesian-product sweep over named parameter axes.

    Example
    -------
    >>> sweep = ParameterSweep({"p": [4, 16], "htile": [1, 2]})
    >>> len(list(sweep))
    4
    """

    axes: Mapping[str, Sequence[Any]]
    fixed: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, values in self.axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {name!r} has no values")
        overlap = set(self.axes) & set(self.fixed)
        if overlap:
            raise ValueError(f"parameters {sorted(overlap)} appear in both axes and fixed")

    def __iter__(self) -> Iterator[dict[str, Any]]:
        names = list(self.axes.keys())
        for combo in itertools.product(*(self.axes[name] for name in names)):
            point = dict(self.fixed)
            point.update(dict(zip(names, combo)))
            yield point

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def run(self, fn: Callable[..., Any]) -> list[tuple[dict[str, Any], Any]]:
        """Apply ``fn(**point)`` to every sweep point, returning (point, result) pairs."""
        return [(point, fn(**point)) for point in self]
