"""Application bottleneck analysis (Section 5.4, Figure 11).

The model decomposes the predicted critical path into computation and
communication components ("the communication component ... is derived from
the Send, Receive, TotalComm and Tallreduce terms; the computation component
is the rest").  Plotting both against the processor count shows where
communication starts to dominate - the point past which adding processors
yields greatly diminished returns, and the point at which only faster
inter-core communication (not more cores) can help.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult, PredictionRequest
from repro.backends.registry import BackendSpec
from repro.backends.service import predict_many
from repro.core.loggp import Platform
from repro.core.predictor import Prediction

__all__ = ["BreakdownPoint", "cost_breakdown", "communication_crossover"]


@dataclass(frozen=True)
class BreakdownPoint:
    """Total / computation / communication time at one processor count."""

    total_cores: int
    total_time_days: float
    computation_days: float
    communication_days: float
    pipeline_fill_days: Optional[float]
    prediction: Optional[Prediction]
    result: Optional[BackendResult] = None

    @property
    def communication_dominates(self) -> bool:
        return self.communication_days > self.computation_days


def cost_breakdown(
    spec: WavefrontSpec,
    platform: Platform,
    processor_counts: Sequence[int],
    *,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> list[BreakdownPoint]:
    """The Figure 11 curves: total, computation and communication time vs P.

    ``backend`` selects the prediction engine; ``pipeline_fill_days`` is
    None for backends that cannot separate the fill component.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> points = cost_breakdown(lu_class("A"), cray_xt4(), [4, 16])
    >>> [p.total_cores for p in points]
    [4, 16]
    >>> all(p.computation_days + p.communication_days <= p.total_time_days * (1 + 1e-12)
    ...     for p in points)
    True
    """
    requests = [
        PredictionRequest(spec, platform, total_cores=count)
        for count in processor_counts
    ]
    results = predict_many(requests, backend=backend, workers=workers, executor=executor)
    points: list[BreakdownPoint] = []
    for count, result in zip(processor_counts, results):
        total_days = result.total_time_days
        comp_days = total_days * result.computation_fraction
        fill_fraction = result.pipeline_fill_fraction
        points.append(
            BreakdownPoint(
                total_cores=count,
                total_time_days=total_days,
                computation_days=comp_days,
                communication_days=total_days - comp_days,
                pipeline_fill_days=(
                    total_days * fill_fraction if fill_fraction is not None else None
                ),
                prediction=result.prediction,
                result=result,
            )
        )
    return points


def communication_crossover(points: Sequence[BreakdownPoint]) -> Optional[int]:
    """Smallest processor count at which communication exceeds computation.

    Returns ``None`` when communication never dominates within the studied
    range.  The paper identifies this crossover as the practical scaling
    limit of the configuration.

    >>> compute_bound = BreakdownPoint(64, 1.0, 0.7, 0.3, None, None)
    >>> comm_bound = BreakdownPoint(256, 0.5, 0.2, 0.3, None, None)
    >>> communication_crossover([compute_bound, comm_bound])
    256
    >>> communication_crossover([compute_bound]) is None
    True
    """
    dominated = [p for p in points if p.communication_dominates]
    if not dominated:
        return None
    return min(p.total_cores for p in dominated)
