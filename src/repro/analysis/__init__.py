"""Section 5 analyses: applying the model to design and procurement questions.

One module per study:

* :mod:`repro.analysis.htile` - tile-height optimisation (Figure 5);
* :mod:`repro.analysis.scaling` - execution time vs system size (Figure 6);
* :mod:`repro.analysis.partitioning` - throughput and partition-size metrics
  (Figures 7-9);
* :mod:`repro.analysis.multicore_design` - cores-per-node design study
  (Figure 10);
* :mod:`repro.analysis.bottleneck` - computation/communication breakdown
  (Figure 11);
* :mod:`repro.analysis.redesign` - pipelined energy groups (Figure 12);
* :mod:`repro.analysis.sensitivity` - parameter elasticity / what-if studies
  (an extension using only the paper's model);
* :mod:`repro.analysis.decomposition_study` - processor-array aspect-ratio
  ablation.

Every study accepts ``backend=`` (any registered prediction backend) and
``workers=``/``executor=`` for pool fan-out, because they all evaluate
through :func:`repro.backends.service.predict_many`:

>>> from repro.analysis import strong_scaling
>>> from repro.apps.workloads import lu_class
>>> from repro.platforms import cray_xt4
>>> curve = strong_scaling(lu_class("A"), cray_xt4(), [4, 16])
>>> curve.application, curve.mode
('lu', 'strong')
"""

from repro.analysis.bottleneck import BreakdownPoint, communication_crossover, cost_breakdown
from repro.analysis.decomposition_study import (
    DecompositionPoint,
    all_factorisations,
    best_decomposition,
    decomposition_study,
)
from repro.analysis.sensitivity import (
    APPLICATION_PARAMETERS,
    PLATFORM_PARAMETERS,
    SensitivityResult,
    dominant_parameter,
    perturb_application,
    perturb_platform,
    sensitivity_study,
)
from repro.analysis.htile import HtilePoint, HtileStudy, htile_study, optimal_htile
from repro.analysis.multicore_design import (
    MulticoreDesignPoint,
    cores_per_node_study,
    equivalent_node_counts,
)
from repro.analysis.partitioning import (
    PartitionTradeoffPoint,
    ThroughputPoint,
    optimal_parallel_jobs,
    partition_tradeoff,
    throughput_study,
)
from repro.analysis.redesign import (
    RedesignPoint,
    energy_group_redesign_study,
    pipelined_energy_groups_spec,
)
from repro.analysis.scaling import (
    ScalingCurve,
    ScalingPoint,
    parallel_efficiency,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "BreakdownPoint",
    "communication_crossover",
    "cost_breakdown",
    "DecompositionPoint",
    "all_factorisations",
    "best_decomposition",
    "decomposition_study",
    "APPLICATION_PARAMETERS",
    "PLATFORM_PARAMETERS",
    "SensitivityResult",
    "dominant_parameter",
    "perturb_application",
    "perturb_platform",
    "sensitivity_study",
    "HtilePoint",
    "HtileStudy",
    "htile_study",
    "optimal_htile",
    "MulticoreDesignPoint",
    "cores_per_node_study",
    "equivalent_node_counts",
    "PartitionTradeoffPoint",
    "ThroughputPoint",
    "optimal_parallel_jobs",
    "partition_tradeoff",
    "throughput_study",
    "RedesignPoint",
    "energy_group_redesign_study",
    "pipelined_energy_groups_spec",
    "ScalingCurve",
    "ScalingPoint",
    "parallel_efficiency",
    "strong_scaling",
    "weak_scaling",
]
