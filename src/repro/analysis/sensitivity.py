"""Sensitivity analysis: which parameters actually drive the prediction?

The model's procurement value comes from "what if" questions: what if the
interconnect latency halved, the per-byte bandwidth doubled, the cores were
30% faster, or the code's per-cell work grew?  This module perturbs one
parameter at a time and reports the elasticity of the predicted run time -
``d log(T) / d log(parameter)`` evaluated by finite differences - so that the
dominant lever at a given scale is obvious (at small P it is ``Wg``; past the
Figure 11 crossover it is the communication overhead ``o``).

This is an extension beyond the paper's explicit content, but uses only the
paper's model; it corresponds to the "assess various possible design changes"
use-case the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.backends.base import PredictionRequest
from repro.backends.registry import BackendSpec
from repro.backends.service import predict_many
from repro.core.loggp import OffNodeParams, OnChipParams, Platform

__all__ = [
    "SensitivityResult",
    "PLATFORM_PARAMETERS",
    "APPLICATION_PARAMETERS",
    "perturb_platform",
    "perturb_application",
    "sensitivity_study",
    "dominant_parameter",
]


def _replace_off_node(platform: Platform, **changes) -> Platform:
    return replace(platform, off_node=replace(platform.off_node, **changes))


def _replace_on_chip(platform: Platform, **changes) -> Platform:
    if platform.on_chip is None:
        return platform
    return replace(platform, on_chip=replace(platform.on_chip, **changes))


def perturb_platform(platform: Platform, parameter: str, factor: float) -> Platform:
    """Return a copy of ``platform`` with one constant scaled by ``factor``.

    Supported parameters: ``latency`` (L), ``overhead`` (o), ``gap_per_byte``
    (G), ``onchip_overhead`` (ocopy and odma together), ``onchip_gap``
    (Gcopy and Gdma together) and ``compute`` (the node's compute speed;
    a factor of 2 means cores twice as fast, i.e. half the work time).

    >>> from repro.platforms import cray_xt4
    >>> platform = cray_xt4()
    >>> doubled = perturb_platform(platform, "latency", 2.0)
    >>> doubled.off_node.latency == 2 * platform.off_node.latency
    True
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    if parameter == "latency":
        return _replace_off_node(platform, latency=platform.off_node.latency * factor)
    if parameter == "overhead":
        return _replace_off_node(platform, overhead=platform.off_node.overhead * factor)
    if parameter == "gap_per_byte":
        return _replace_off_node(
            platform, gap_per_byte=platform.off_node.gap_per_byte * factor
        )
    if parameter == "onchip_overhead":
        if platform.on_chip is None:
            return platform
        return _replace_on_chip(
            platform,
            copy_overhead=platform.on_chip.copy_overhead * factor,
            dma_setup=platform.on_chip.dma_setup * factor,
        )
    if parameter == "onchip_gap":
        if platform.on_chip is None:
            return platform
        return _replace_on_chip(
            platform,
            gap_per_byte_copy=platform.on_chip.gap_per_byte_copy * factor,
            gap_per_byte_dma=platform.on_chip.gap_per_byte_dma * factor,
        )
    if parameter == "compute":
        # Faster compute = smaller work times.
        return platform.with_compute_scale(platform.compute_scale / factor)
    raise ValueError(f"unknown platform parameter {parameter!r}")


def perturb_application(spec: WavefrontSpec, parameter: str, factor: float) -> WavefrontSpec:
    """Return a copy of ``spec`` with one application parameter scaled.

    Supported parameters: ``wg`` (per-cell work), ``wg_pre``, ``htile``,
    ``message_bytes`` (boundary bytes per cell) and ``iterations``.

    >>> from repro.apps.workloads import lu_class
    >>> perturb_application(lu_class("A"), "htile", 2.0).htile
    2.0
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    if parameter == "wg":
        return spec.with_wg(spec.wg_us * factor)
    if parameter == "wg_pre":
        return spec.with_wg(spec.wg_us, spec.wg_pre_us * factor)
    if parameter == "htile":
        return spec.with_htile(spec.htile * factor)
    if parameter == "message_bytes":
        return replace(spec, boundary_bytes_per_cell=spec.boundary_bytes_per_cell * factor)
    if parameter == "iterations":
        return spec.with_iterations(max(1, int(round(spec.iterations * factor))))
    raise ValueError(f"unknown application parameter {parameter!r}")


#: Platform parameters supported by :func:`sensitivity_study`.
PLATFORM_PARAMETERS: tuple[str, ...] = (
    "latency",
    "overhead",
    "gap_per_byte",
    "onchip_overhead",
    "onchip_gap",
    "compute",
)

#: Application parameters supported by :func:`sensitivity_study`.
APPLICATION_PARAMETERS: tuple[str, ...] = ("wg", "wg_pre", "htile", "message_bytes")


@dataclass(frozen=True)
class SensitivityResult:
    """Elasticity of the predicted iteration time to one parameter."""

    parameter: str
    kind: str  # "platform" or "application"
    baseline_us: float
    perturbed_us: float
    factor: float

    @property
    def elasticity(self) -> float:
        """Approximate ``d log T / d log p``: the % change in time per % change
        in the parameter (evaluated at the given perturbation factor)."""
        import math

        if self.baseline_us <= 0 or self.perturbed_us <= 0 or self.factor == 1.0:  # repro: noqa[RPR004] factor 1.0 is the exact no-perturbation sentinel
            return 0.0
        return math.log(self.perturbed_us / self.baseline_us) / math.log(self.factor)


def sensitivity_study(
    spec: WavefrontSpec,
    platform: Platform,
    total_cores: int,
    *,
    factor: float = 1.10,
    platform_parameters: Sequence[str] = PLATFORM_PARAMETERS,
    application_parameters: Sequence[str] = APPLICATION_PARAMETERS,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> Dict[str, SensitivityResult]:
    """Perturb each parameter by ``factor`` and report the time elasticity.

    The baseline and every perturbation go through one
    :func:`~repro.backends.service.predict_many` batch on ``backend``;
    ``workers``/``executor`` optionally evaluate them on a pool.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> results = sensitivity_study(lu_class("A"), cray_xt4(), 16)
    >>> dominant_parameter(results, kind="application").parameter
    'wg'
    """
    if factor <= 0 or factor == 1.0:  # repro: noqa[RPR004] exact 1.0 would divide by log(1)=0; any other factor is valid
        raise ValueError("factor must be positive and different from 1")
    perturbations = [("platform", parameter) for parameter in platform_parameters] + [
        ("application", parameter) for parameter in application_parameters
    ]
    requests = [PredictionRequest(spec, platform, total_cores=total_cores)]
    for kind, parameter in perturbations:
        if kind == "platform":
            requests.append(
                PredictionRequest(
                    spec, perturb_platform(platform, parameter, factor),
                    total_cores=total_cores,
                )
            )
        else:
            requests.append(
                PredictionRequest(
                    perturb_application(spec, parameter, factor), platform,
                    total_cores=total_cores,
                )
            )
    results = predict_many(requests, backend=backend, workers=workers, executor=executor)
    baseline = results[0].time_per_iteration_us
    return {
        parameter: SensitivityResult(
            parameter=parameter,
            kind=kind,
            baseline_us=baseline,
            perturbed_us=result.time_per_iteration_us,
            factor=factor,
        )
        for (kind, parameter), result in zip(perturbations, results[1:])
    }


def dominant_parameter(
    results: Dict[str, SensitivityResult], *, kind: str | None = None
) -> SensitivityResult:
    """The parameter with the largest absolute elasticity (optionally by kind).

    >>> wg = SensitivityResult("wg", "application", 100.0, 110.0, 1.10)
    >>> round(wg.elasticity, 2)
    1.0
    >>> dominant_parameter({"wg": wg}).parameter
    'wg'
    """
    candidates = [
        result
        for result in results.values()
        if kind is None or result.kind == kind
    ]
    if not candidates:
        raise ValueError("no sensitivity results to choose from")
    # Post-fan-out reduction on the caller; the lambda never crosses the
    # process-pool boundary (RPR003 audit, PR 6).
    return max(candidates, key=lambda r: abs(r.elasticity))
