"""Sweep-structure redesign: pipelined energy groups (Section 5.5, Figure 12).

Sweep3D normally iterates each energy group to convergence before starting
the next, so every iteration of every group pays its own pipeline-fill
overhead.  The proposed redesign pipelines the energy groups: the first two
sweeps are performed for all groups, then sweeps 3-4 for all groups, and so
on - one iteration then contains ``8 x n_groups`` sweeps but still only
``nfull = 2`` and ``ndiag = 2`` exposed fills, eliminating nearly all of the
fill overhead (at the possible cost of extra iterations to converge, which
the user can fold in as a multiplier).

The study follows the paper's Figure 12 configuration: weak scaling with a
fixed 4 x 4 x 1000-cell subdomain per processor, 30 energy groups and 10^4
time steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.apps.sweep3d import Sweep3DConfig, sweep3d
from repro.backends.base import PredictionRequest
from repro.backends.registry import BackendSpec
from repro.backends.service import predict_many
from repro.core.decomposition import ProblemSize, ProcessorGrid, decompose
from repro.core.loggp import Platform
from repro.util.units import safe_ratio

__all__ = [
    "RedesignPoint",
    "pipelined_energy_groups_spec",
    "energy_group_redesign_study",
]


@dataclass(frozen=True)
class RedesignPoint:
    """Sequential vs pipelined energy-group execution at one machine size."""

    total_cores: int
    sequential_days: float
    pipelined_days: float
    #: None when the backend cannot separate the fill component (simulator).
    sequential_fill_days: Optional[float]

    @property
    def fill_fraction_sequential(self) -> Optional[float]:
        if self.sequential_fill_days is None:
            return None
        return safe_ratio(self.sequential_fill_days, self.sequential_days)

    @property
    def improvement(self) -> float:
        """Fractional reduction in run time from pipelining the groups."""
        return 1.0 - safe_ratio(self.pipelined_days, self.sequential_days, default=1.0)


def pipelined_energy_groups_spec(
    spec: WavefrontSpec, *, extra_iteration_factor: float = 1.0
) -> WavefrontSpec:
    """Transform a spec so that its energy groups are pipelined.

    The per-iteration schedule is repeated once per energy group (only the
    final repetition's precedence structure is exposed), the energy-group
    multiplier drops to one, and ``extra_iteration_factor`` scales the
    iteration count if the user expects pipelining to slow convergence.

    >>> from repro.apps.workloads import sweep3d_production_1billion
    >>> spec = sweep3d_production_1billion()
    >>> pipelined = pipelined_energy_groups_spec(spec)
    >>> (spec.nsweeps, spec.energy_groups, pipelined.nsweeps, pipelined.energy_groups)
    (8, 30, 240, 1)
    >>> (pipelined.nfull, pipelined.ndiag) == (spec.nfull, spec.ndiag)
    True
    """
    if spec.energy_groups < 1:
        raise ValueError("spec must have at least one energy group")
    if extra_iteration_factor < 1.0:
        raise ValueError("extra_iteration_factor must be >= 1")
    iterations = max(1, int(round(spec.iterations * extra_iteration_factor)))
    return (
        spec.with_schedule(spec.schedule.repeated(spec.energy_groups))
        .with_energy_groups(1)
        .with_iterations(iterations)
    )


def _weak_scaled_problem(
    grid: ProcessorGrid, cells_per_processor: tuple[int, int, int]
) -> ProblemSize:
    cx, cy, cz = cells_per_processor
    return ProblemSize(cx * grid.n, cy * grid.m, cz)


def energy_group_redesign_study(
    platform: Platform,
    processor_counts: Sequence[int],
    *,
    cells_per_processor: tuple[int, int, int] = (4, 4, 1000),
    energy_groups: int = 30,
    iterations: int = 120,
    time_steps: int = 10_000,
    htile: float = 2.0,
    extra_iteration_factor: float = 1.0,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> list[RedesignPoint]:
    """The Figure 12 study: sequential vs pipelined energy groups, weak scaling.

    Both variants at every machine size are evaluated in a single
    :func:`~repro.backends.service.predict_many` batch on ``backend``.

    >>> from repro.platforms import cray_xt4
    >>> points = energy_group_redesign_study(cray_xt4(), [16],
    ...                                      energy_groups=4, time_steps=10)
    >>> points[0].improvement > 0   # pipelining removes exposed fills
    True
    """
    if not processor_counts:
        raise ValueError("processor_counts must not be empty")
    config = Sweep3DConfig.for_htile(htile)
    requests: list[PredictionRequest] = []
    for count in processor_counts:
        grid = decompose(count)
        problem = _weak_scaled_problem(grid, cells_per_processor)
        sequential = sweep3d(
            problem,
            config=config,
            iterations=iterations,
            time_steps=time_steps,
            energy_groups=energy_groups,
        )
        pipelined = pipelined_energy_groups_spec(
            sequential, extra_iteration_factor=extra_iteration_factor
        )
        requests.append(PredictionRequest(sequential, platform, grid=grid))
        requests.append(PredictionRequest(pipelined, platform, grid=grid))
    results = predict_many(requests, backend=backend, workers=workers, executor=executor)
    points: list[RedesignPoint] = []
    for index, count in enumerate(processor_counts):
        seq_result = results[2 * index]
        pipe_result = results[2 * index + 1]
        fill_fraction = seq_result.pipeline_fill_fraction
        points.append(
            RedesignPoint(
                total_cores=count,
                sequential_days=seq_result.total_time_days,
                pipelined_days=pipe_result.total_time_days,
                sequential_fill_days=(
                    seq_result.total_time_days * fill_fraction
                    if fill_fraction is not None
                    else None
                ),
            )
        )
    return points
