"""Platform design: how many cores per node? (Section 5.3, Figure 10).

The study fixes the application and the number of *nodes* and varies the
number of cores per node (1, 2, 4, 8, 16), all sharing one memory bus /
NIC, plus the alternative 16-core node with a separate bus per group of four
cores.  Because the off-node constants stay the same, the differences come
from (a) more of the neighbour traffic moving on-chip and (b) the Table 6
shared-bus contention - which is why more than four cores per bus shows
diminishing or negative returns for transport codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult
from repro.backends.registry import BackendSpec
from repro.core.loggp import Platform
from repro.core.predictor import Prediction
from repro.optimize import OptimizationSpace, optimize

__all__ = ["MulticoreDesignPoint", "cores_per_node_study", "equivalent_node_counts"]


def _fixed_spec(spec: WavefrontSpec, htile: Optional[float]) -> WavefrontSpec:
    """Htile-ignoring builder: the design study varies the machine, not the app."""
    return spec


@dataclass(frozen=True)
class MulticoreDesignPoint:
    """One (nodes, cores-per-node, buses-per-node) design point."""

    nodes: int
    cores_per_node: int
    buses_per_node: int
    total_cores: int
    total_time_days: float
    prediction: Optional[Prediction]
    result: Optional[BackendResult] = None

    @property
    def label(self) -> str:
        if self.buses_per_node > 1:
            return f"{self.cores_per_node} cores/node ({self.buses_per_node} buses)"
        return f"{self.cores_per_node} cores/node"


def cores_per_node_study(
    spec: WavefrontSpec,
    base_platform: Platform,
    node_counts: Sequence[int],
    *,
    cores_per_node_options: Sequence[int] = (1, 2, 4, 8, 16),
    buses_per_node: int = 1,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> list[MulticoreDesignPoint]:
    """Evaluate the Figure 10 design space.

    ``base_platform`` supplies the communication constants (typically the
    XT4); its node architecture is overridden per design point.
    ``backend`` selects the prediction engine; ``workers``/``executor``
    optionally fan the design points out over a pool.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> points = cores_per_node_study(lu_class("A"), cray_xt4(), [16],
    ...                               cores_per_node_options=(1, 2))
    >>> [(p.nodes, p.cores_per_node, p.total_cores) for p in points]
    [(16, 1, 16), (16, 2, 32)]
    """
    space = OptimizationSpace(
        spec_builder=partial(_fixed_spec, spec),
        platform=base_platform,
        node_counts=tuple(node_counts),
        cores_per_node=tuple(cores_per_node_options),
        buses_per_node=buses_per_node,
    )
    evaluated = optimize(
        space, strategy="exhaustive", backend=backend, workers=workers, executor=executor
    ).evaluated
    by_design = {(point.point.nodes, point.point.cores_per_node): point for point in evaluated}
    points = []
    for cores in cores_per_node_options:
        for nodes in node_counts:
            design = by_design[(nodes, cores)]
            points.append(
                MulticoreDesignPoint(
                    nodes=nodes,
                    cores_per_node=cores,
                    buses_per_node=min(buses_per_node, cores),
                    total_cores=design.total_cores,
                    total_time_days=design.result.total_time_days,
                    prediction=design.result.prediction,
                    result=design.result,
                )
            )
    return points


def equivalent_node_counts(
    points: Sequence[MulticoreDesignPoint], target_days: float, tolerance: float = 0.10
) -> list[MulticoreDesignPoint]:
    """Design points whose run time is within ``tolerance`` of ``target_days``.

    Used to answer questions such as "which (nodes, cores/node) combinations
    match the performance of 64K single-core nodes?" (Section 5.3).

    >>> point = MulticoreDesignPoint(nodes=4, cores_per_node=1,
    ...                              buses_per_node=1, total_cores=4,
    ...                              total_time_days=1.0, prediction=None)
    >>> [p.nodes for p in equivalent_node_counts([point], target_days=1.05)]
    [4]
    """
    if target_days <= 0:
        raise ValueError("target_days must be positive")
    return [
        point
        for point in points
        if abs(point.total_time_days - target_days) / target_days <= tolerance
    ]
