"""Application design study: tile height ``Htile`` (Section 5.1, Figure 5).

A larger tile raises the computation-to-communication ratio (fewer, larger
messages) but lengthens the pipeline fill.  The study sweeps ``Htile`` for a
given application, problem size and processor count and reports the execution
time per time step, from which the optimal blocking factor can be read off -
the paper finds 2-5 on the XT4 versus 5-10 on the older SP/2.

Both entry points are expressed on top of :mod:`repro.optimize`: the study
is an exhaustive search over a one-axis
:class:`~repro.optimize.space.OptimizationSpace`, and :func:`optimal_htile`
optionally swaps in the golden-section strategy, which exploits the
unimodality of the tile-height curve to find the same optimum in O(log n)
model evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult
from repro.backends.registry import BackendSpec
from repro.core.loggp import Platform
from repro.core.predictor import Prediction
from repro.optimize import OptimizationSpace, StrategySpec, optimize

__all__ = ["HtilePoint", "HtileStudy", "htile_study", "optimal_htile"]


@dataclass(frozen=True)
class HtilePoint:
    """One point of the Htile sweep.

    ``pipeline_fill_fraction`` is None when the backend cannot separate the
    fill component (e.g. the simulator); ``prediction`` carries the analytic
    detail object when available and ``result`` the backend-agnostic one.
    """

    htile: float
    time_per_time_step_s: float
    pipeline_fill_fraction: Optional[float]
    communication_fraction: float
    prediction: Optional[Prediction]
    result: Optional[BackendResult] = None


@dataclass(frozen=True)
class HtileStudy:
    """Results of an Htile sweep for one (application, P) configuration."""

    application: str
    platform: str
    total_cores: int
    points: tuple[HtilePoint, ...]

    @property
    def optimal(self) -> HtilePoint:
        # Post-fan-out reduction on the caller; the lambda never crosses the
        # process-pool boundary (RPR003 audit, PR 6).
        return min(self.points, key=lambda p: p.time_per_time_step_s)

    def improvement_over(self, htile: float) -> float:
        """Fractional speed-up of the optimum relative to ``Htile = htile``."""
        baseline = next((p for p in self.points if p.htile == htile), None)
        if baseline is None:
            raise ValueError(f"no point with Htile = {htile} in this study")
        return 1.0 - self.optimal.time_per_time_step_s / baseline.time_per_time_step_s


def _htile_point(htile: float, result: BackendResult) -> HtilePoint:
    return HtilePoint(
        htile=float(htile),
        time_per_time_step_s=result.time_per_time_step_s,
        pipeline_fill_fraction=result.pipeline_fill_fraction,
        communication_fraction=result.communication_fraction,
        prediction=result.prediction,
        result=result,
    )


def htile_study(
    spec_builder: Callable[[float], WavefrontSpec],
    platform: Platform,
    total_cores: int,
    htile_values: Sequence[float],
    *,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> HtileStudy:
    """Sweep ``Htile`` for the application produced by ``spec_builder``.

    ``spec_builder(htile)`` must return the application spec configured with
    that tile height (for Sweep3D this maps Htile back onto ``mk``; for
    Chimaera / custom codes it sets the blocking factor directly); it runs
    in the calling process.  ``backend`` selects the prediction engine and
    ``workers``/``executor`` optionally fan the evaluations out over a pool
    (see :func:`repro.backends.service.predict_many`).

    >>> from repro.apps.workloads import chimaera_240cubed
    >>> from repro.platforms import cray_xt4
    >>> study = htile_study(chimaera_240cubed().with_htile, cray_xt4(),
    ...                     256, [1, 2, 4])
    >>> [point.htile for point in study.points]
    [1.0, 2.0, 4.0]
    >>> study.optimal.htile in (1.0, 2.0, 4.0)
    True
    """
    if not htile_values:
        raise ValueError("htile_values must not be empty")
    space = OptimizationSpace(
        spec_builder=spec_builder,
        platform=platform,
        htiles=tuple(htile_values),
        total_cores=(total_cores,),
    )
    result = optimize(
        space, strategy="exhaustive", backend=backend, workers=workers, executor=executor
    )
    by_htile = {point.point.htile: point.result for point in result.evaluated}
    return HtileStudy(
        application=result.evaluated[-1].result.spec.name,
        platform=platform.name,
        total_cores=total_cores,
        points=tuple(
            _htile_point(htile, by_htile[float(htile)]) for htile in htile_values
        ),
    )


def optimal_htile(
    spec_builder: Callable[[float], WavefrontSpec],
    platform: Platform,
    total_cores: int,
    htile_values: Sequence[float],
    *,
    backend: BackendSpec = "analytic-fast",
    strategy: StrategySpec = "exhaustive",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> float:
    """The Htile value minimising execution time over the given candidates.

    ``strategy`` selects how the candidates are searched:
    ``"exhaustive"`` (default) evaluates them all, ``"golden-section"``
    exploits the unimodality of the tile-height curve to locate the
    optimum in O(log n) model evaluations (the conformance suite pins the
    two to within one grid step of each other).

    >>> from repro.apps.workloads import chimaera_240cubed
    >>> from repro.platforms import cray_xt4
    >>> best = optimal_htile(chimaera_240cubed().with_htile, cray_xt4(),
    ...                      256, [1, 2, 4])
    >>> best in (1.0, 2.0, 4.0)
    True
    >>> optimal_htile(chimaera_240cubed().with_htile, cray_xt4(),
    ...               256, [1, 2, 4], strategy="golden-section") == best
    True
    """
    space = OptimizationSpace(
        spec_builder=spec_builder,
        platform=platform,
        htiles=tuple(htile_values),
        total_cores=(total_cores,),
    )
    result = optimize(
        space, strategy=strategy, backend=backend, workers=workers, executor=executor
    )
    htile = result.best.point.htile
    assert htile is not None  # the space always carries an htile axis
    return htile
