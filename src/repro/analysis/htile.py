"""Application design study: tile height ``Htile`` (Section 5.1, Figure 5).

A larger tile raises the computation-to-communication ratio (fewer, larger
messages) but lengthens the pipeline fill.  The study sweeps ``Htile`` for a
given application, problem size and processor count and reports the execution
time per time step, from which the optimal blocking factor can be read off -
the paper finds 2-5 on the XT4 versus 5-10 on the older SP/2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.core.loggp import Platform
from repro.core.predictor import Prediction, predict
from repro.util.sweep import parallel_map

__all__ = ["HtilePoint", "HtileStudy", "htile_study", "optimal_htile"]


@dataclass(frozen=True)
class HtilePoint:
    """One point of the Htile sweep."""

    htile: float
    time_per_time_step_s: float
    pipeline_fill_fraction: float
    communication_fraction: float
    prediction: Prediction


@dataclass(frozen=True)
class HtileStudy:
    """Results of an Htile sweep for one (application, P) configuration."""

    application: str
    platform: str
    total_cores: int
    points: tuple[HtilePoint, ...]

    @property
    def optimal(self) -> HtilePoint:
        return min(self.points, key=lambda p: p.time_per_time_step_s)

    def improvement_over(self, htile: float) -> float:
        """Fractional speed-up of the optimum relative to ``Htile = htile``."""
        baseline = next((p for p in self.points if p.htile == htile), None)
        if baseline is None:
            raise ValueError(f"no point with Htile = {htile} in this study")
        return 1.0 - self.optimal.time_per_time_step_s / baseline.time_per_time_step_s


def _htile_point(
    spec_builder: Callable[[float], WavefrontSpec],
    platform: Platform,
    total_cores: int,
    htile: float,
) -> tuple[str, HtilePoint]:
    spec = spec_builder(htile)
    prediction = predict(spec, platform, total_cores=total_cores)
    iteration = prediction.time_per_iteration_us
    point = HtilePoint(
        htile=float(htile),
        time_per_time_step_s=prediction.time_per_time_step_s,
        pipeline_fill_fraction=(
            prediction.pipeline_fill_per_iteration_us / iteration
            if iteration > 0
            else 0.0
        ),
        communication_fraction=prediction.communication_fraction,
        prediction=prediction,
    )
    return spec.name, point


def htile_study(
    spec_builder: Callable[[float], WavefrontSpec],
    platform: Platform,
    total_cores: int,
    htile_values: Sequence[float],
    *,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> HtileStudy:
    """Sweep ``Htile`` for the application produced by ``spec_builder``.

    ``spec_builder(htile)`` must return the application spec configured with
    that tile height (for Sweep3D this maps Htile back onto ``mk``; for
    Chimaera / custom codes it sets the blocking factor directly).
    ``workers``/``executor`` optionally fan the sweep out over a pool; with
    ``executor="process"`` the builder must be picklable.
    """
    if not htile_values:
        raise ValueError("htile_values must not be empty")
    results = parallel_map(
        partial(_htile_point, spec_builder, platform, total_cores),
        htile_values,
        workers,
        executor,
    )
    return HtileStudy(
        application=results[-1][0],
        platform=platform.name,
        total_cores=total_cores,
        points=tuple(point for _, point in results),
    )


def optimal_htile(
    spec_builder: Callable[[float], WavefrontSpec],
    platform: Platform,
    total_cores: int,
    htile_values: Sequence[float],
    *,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> float:
    """The Htile value minimising execution time over the given candidates."""
    study = htile_study(
        spec_builder, platform, total_cores, htile_values, workers=workers, executor=executor
    )
    return study.optimal.htile
