"""Application design study: tile height ``Htile`` (Section 5.1, Figure 5).

A larger tile raises the computation-to-communication ratio (fewer, larger
messages) but lengthens the pipeline fill.  The study sweeps ``Htile`` for a
given application, problem size and processor count and reports the execution
time per time step, from which the optimal blocking factor can be read off -
the paper finds 2-5 on the XT4 versus 5-10 on the older SP/2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult, PredictionRequest
from repro.backends.registry import BackendSpec
from repro.backends.service import predict_many
from repro.core.loggp import Platform
from repro.core.predictor import Prediction

__all__ = ["HtilePoint", "HtileStudy", "htile_study", "optimal_htile"]


@dataclass(frozen=True)
class HtilePoint:
    """One point of the Htile sweep.

    ``pipeline_fill_fraction`` is None when the backend cannot separate the
    fill component (e.g. the simulator); ``prediction`` carries the analytic
    detail object when available and ``result`` the backend-agnostic one.
    """

    htile: float
    time_per_time_step_s: float
    pipeline_fill_fraction: Optional[float]
    communication_fraction: float
    prediction: Optional[Prediction]
    result: Optional[BackendResult] = None


@dataclass(frozen=True)
class HtileStudy:
    """Results of an Htile sweep for one (application, P) configuration."""

    application: str
    platform: str
    total_cores: int
    points: tuple[HtilePoint, ...]

    @property
    def optimal(self) -> HtilePoint:
        return min(self.points, key=lambda p: p.time_per_time_step_s)

    def improvement_over(self, htile: float) -> float:
        """Fractional speed-up of the optimum relative to ``Htile = htile``."""
        baseline = next((p for p in self.points if p.htile == htile), None)
        if baseline is None:
            raise ValueError(f"no point with Htile = {htile} in this study")
        return 1.0 - self.optimal.time_per_time_step_s / baseline.time_per_time_step_s


def _htile_point(htile: float, result: BackendResult) -> HtilePoint:
    return HtilePoint(
        htile=float(htile),
        time_per_time_step_s=result.time_per_time_step_s,
        pipeline_fill_fraction=result.pipeline_fill_fraction,
        communication_fraction=result.communication_fraction,
        prediction=result.prediction,
        result=result,
    )


def htile_study(
    spec_builder: Callable[[float], WavefrontSpec],
    platform: Platform,
    total_cores: int,
    htile_values: Sequence[float],
    *,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> HtileStudy:
    """Sweep ``Htile`` for the application produced by ``spec_builder``.

    ``spec_builder(htile)`` must return the application spec configured with
    that tile height (for Sweep3D this maps Htile back onto ``mk``; for
    Chimaera / custom codes it sets the blocking factor directly); it runs
    in the calling process.  ``backend`` selects the prediction engine and
    ``workers``/``executor`` optionally fan the evaluations out over a pool
    (see :func:`repro.backends.service.predict_many`).

    >>> from repro.apps.workloads import chimaera_240cubed
    >>> from repro.platforms import cray_xt4
    >>> study = htile_study(chimaera_240cubed().with_htile, cray_xt4(),
    ...                     256, [1, 2, 4])
    >>> [point.htile for point in study.points]
    [1.0, 2.0, 4.0]
    >>> study.optimal.htile in (1.0, 2.0, 4.0)
    True
    """
    if not htile_values:
        raise ValueError("htile_values must not be empty")
    specs = [spec_builder(htile) for htile in htile_values]
    requests = [
        PredictionRequest(spec, platform, total_cores=total_cores) for spec in specs
    ]
    results = predict_many(requests, backend=backend, workers=workers, executor=executor)
    return HtileStudy(
        application=specs[-1].name,
        platform=platform.name,
        total_cores=total_cores,
        points=tuple(
            _htile_point(htile, result)
            for htile, result in zip(htile_values, results)
        ),
    )


def optimal_htile(
    spec_builder: Callable[[float], WavefrontSpec],
    platform: Platform,
    total_cores: int,
    htile_values: Sequence[float],
    *,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> float:
    """The Htile value minimising execution time over the given candidates.

    >>> from repro.apps.workloads import chimaera_240cubed
    >>> from repro.platforms import cray_xt4
    >>> best = optimal_htile(chimaera_240cubed().with_htile, cray_xt4(),
    ...                      256, [1, 2, 4])
    >>> best in (1.0, 2.0, 4.0)
    True
    """
    study = htile_study(
        spec_builder,
        platform,
        total_cores,
        htile_values,
        backend=backend,
        workers=workers,
        executor=executor,
    )
    return study.optimal.htile
