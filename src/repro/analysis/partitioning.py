"""Partitioning and throughput metrics (Section 5.2, Figures 7-9).

A site with ``P_avail`` processors can run one large simulation or partition
the machine and run several smaller ones in parallel.  The paper quantifies
the trade-off with:

* the number of time steps each problem solves per month when the machine is
  split into 1, 2, 4 or 8 equal partitions (Figure 7);
* ``R/X`` and ``R^2/X``, where ``R`` is the runtime of one simulation on its
  partition and ``X`` the system-wide simulation throughput; minimising
  ``R/X`` favours throughput, minimising ``R^2/X`` weights single-job
  turnaround more heavily (Figure 8);
* the optimal number of parallel simulations for each criterion and machine
  size (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.backends.base import PredictionRequest
from repro.backends.registry import BackendSpec
from repro.backends.service import predict_many
from repro.core.loggp import Platform
from repro.util.units import rate_per_month, us_to_seconds

__all__ = [
    "ThroughputPoint",
    "PartitionTradeoffPoint",
    "throughput_study",
    "partition_tradeoff",
    "optimal_parallel_jobs",
    "halving_partition_sizes",
]


@dataclass(frozen=True)
class ThroughputPoint:
    """Throughput when ``parallel_jobs`` simulations share ``total_cores``."""

    total_cores: int
    parallel_jobs: int
    partition_cores: int
    time_per_time_step_s: float
    time_steps_per_month_per_job: float

    @property
    def total_time_steps_per_month(self) -> float:
        """Aggregate time steps solved per month across all partitions."""
        return self.time_steps_per_month_per_job * self.parallel_jobs


def _time_per_time_step_s(result) -> float:
    """Extraction hook (kept separable so tests can stub degenerate timings)."""
    return result.time_per_time_step_s


def throughput_study(
    spec: WavefrontSpec,
    platform: Platform,
    total_cores_options: Sequence[int],
    *,
    parallel_jobs_options: Sequence[int] = (1, 2, 4, 8),
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> list[ThroughputPoint]:
    """The Figure 7 study: time steps per problem per month vs partitioning.

    The same partition size recurs across many ``total_cores`` entries; the
    batch service deduplicates the repeats and evaluates each distinct
    partition once (on any ``backend``, optionally over a
    ``workers``/``executor`` pool).  The monthly rate goes through
    :func:`repro.util.units.rate_per_month`, so a degenerate zero-time
    prediction raises instead of dividing by zero.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> points = throughput_study(lu_class("A"), cray_xt4(), [64],
    ...                           parallel_jobs_options=(1, 2))
    >>> [(p.parallel_jobs, p.partition_cores) for p in points]
    [(1, 64), (2, 32)]
    """
    combos = [
        (total_cores, jobs)
        for total_cores in total_cores_options
        for jobs in parallel_jobs_options
        if jobs >= 1 and total_cores % jobs == 0
    ]
    requests = [
        PredictionRequest(spec, platform, total_cores=total_cores // jobs)
        for total_cores, jobs in combos
    ]
    results = predict_many(requests, backend=backend, workers=workers, executor=executor)
    points = []
    for (total_cores, jobs), result in zip(combos, results):
        step_time = _time_per_time_step_s(result)
        points.append(
            ThroughputPoint(
                total_cores=total_cores,
                parallel_jobs=jobs,
                partition_cores=total_cores // jobs,
                time_per_time_step_s=step_time,
                time_steps_per_month_per_job=rate_per_month(step_time),
            )
        )
    return points


@dataclass(frozen=True)
class PartitionTradeoffPoint:
    """One partition size of the Figure 8 trade-off curves.

    ``runtime_s`` (``R``) is the time for one simulation (all of ``spec``'s
    time steps) on its partition; ``throughput_per_s`` (``X``) is the number
    of simulations the whole machine completes per second.
    """

    available_cores: int
    partition_cores: int
    parallel_jobs: int
    runtime_s: float
    throughput_per_s: float

    @property
    def r_over_x(self) -> float:
        return self.runtime_s / self.throughput_per_s

    @property
    def r2_over_x(self) -> float:
        return self.runtime_s**2 / self.throughput_per_s


def partition_tradeoff(
    spec: WavefrontSpec,
    platform: Platform,
    available_cores: int,
    partition_sizes: Sequence[int],
    *,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> list[PartitionTradeoffPoint]:
    """Evaluate ``R/X`` and ``R^2/X`` for each candidate partition size.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> points = partition_tradeoff(lu_class("A"), cray_xt4(), 64, [64, 32])
    >>> [(p.partition_cores, p.parallel_jobs) for p in points]
    [(64, 1), (32, 2)]
    """
    valid = [
        partition
        for partition in partition_sizes
        if 1 <= partition <= available_cores and available_cores % partition == 0
    ]
    if not valid:
        raise ValueError("no valid partition sizes were supplied")
    requests = [
        PredictionRequest(spec, platform, total_cores=partition) for partition in valid
    ]
    results = predict_many(requests, backend=backend, workers=workers, executor=executor)
    points = []
    for partition, result in zip(valid, results):
        jobs = available_cores // partition
        runtime_s = us_to_seconds(result.total_time_us)
        points.append(
            PartitionTradeoffPoint(
                available_cores=available_cores,
                partition_cores=partition,
                parallel_jobs=jobs,
                runtime_s=runtime_s,
                throughput_per_s=jobs / runtime_s,
            )
        )
    return points


def halving_partition_sizes(available_cores: int, min_partition_cores: int) -> list[int]:
    """Candidate partition sizes: repeated halvings of ``available_cores``.

    Halving stops at ``min_partition_cores``, or - for non-power-of-two
    machines - as soon as the partition size becomes odd, since an odd
    partition cannot be split into two equal integer halves.  Every returned
    size therefore divides ``available_cores`` exactly.

    >>> halving_partition_sizes(4096, 1024)
    [4096, 2048, 1024]
    >>> halving_partition_sizes(24, 2)   # halving stops at the odd size 3
    [24, 12, 6, 3]
    """
    if available_cores < 1:
        raise ValueError("available_cores must be positive")
    if min_partition_cores < 1:
        raise ValueError("min_partition_cores must be positive")
    if available_cores < min_partition_cores:
        raise ValueError(
            f"available_cores ({available_cores}) is below min_partition_cores "
            f"({min_partition_cores}): no partition satisfies the minimum; "
            "lower min_partition_cores or grow the machine"
        )
    sizes = []
    partition = available_cores
    while partition >= min_partition_cores:
        sizes.append(partition)
        if partition % 2 != 0:
            break
        partition //= 2
    return sizes


def optimal_parallel_jobs(
    spec: WavefrontSpec,
    platform: Platform,
    available_cores: int,
    *,
    criterion: str = "r_over_x",
    min_partition_cores: int = 1024,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> PartitionTradeoffPoint:
    """The Figure 9 quantity: the best number of parallel simulations.

    Partitions are halvings of ``available_cores`` with at least
    ``min_partition_cores`` cores each (see :func:`halving_partition_sizes`
    for the treatment of non-power-of-two machines).  ``criterion`` selects
    the metric to minimise: ``"r_over_x"`` or ``"r2_over_x"``.  Raises
    ``ValueError`` when ``available_cores`` is below ``min_partition_cores``.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> best = optimal_parallel_jobs(lu_class("A"), cray_xt4(), 64,
    ...                              min_partition_cores=16)
    >>> best.available_cores, best.parallel_jobs in (1, 2, 4)
    (64, True)
    """
    if criterion not in ("r_over_x", "r2_over_x"):
        raise ValueError("criterion must be 'r_over_x' or 'r2_over_x'")
    sizes = halving_partition_sizes(available_cores, min_partition_cores)
    points = partition_tradeoff(
        spec,
        platform,
        available_cores,
        sizes,
        backend=backend,
        workers=workers,
        executor=executor,
    )
    # Post-fan-out reduction on the caller; the lambda never crosses the
    # process-pool boundary (RPR003 audit, PR 6).
    return min(points, key=lambda p: getattr(p, criterion))
