"""Partitioning and throughput metrics (Section 5.2, Figures 7-9).

A site with ``P_avail`` processors can run one large simulation or partition
the machine and run several smaller ones in parallel.  The paper quantifies
the trade-off with:

* the number of time steps each problem solves per month when the machine is
  split into 1, 2, 4 or 8 equal partitions (Figure 7);
* ``R/X`` and ``R^2/X``, where ``R`` is the runtime of one simulation on its
  partition and ``X`` the system-wide simulation throughput; minimising
  ``R/X`` favours throughput, minimising ``R^2/X`` weights single-job
  turnaround more heavily (Figure 8);
* the optimal number of parallel simulations for each criterion and machine
  size (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.apps.base import WavefrontSpec
from repro.core.loggp import Platform
from repro.core.predictor import predict
from repro.util.units import SECONDS_PER_MONTH, us_to_seconds

__all__ = [
    "ThroughputPoint",
    "PartitionTradeoffPoint",
    "throughput_study",
    "partition_tradeoff",
    "optimal_parallel_jobs",
]


@dataclass(frozen=True)
class ThroughputPoint:
    """Throughput when ``parallel_jobs`` simulations share ``total_cores``."""

    total_cores: int
    parallel_jobs: int
    partition_cores: int
    time_per_time_step_s: float
    time_steps_per_month_per_job: float

    @property
    def total_time_steps_per_month(self) -> float:
        """Aggregate time steps solved per month across all partitions."""
        return self.time_steps_per_month_per_job * self.parallel_jobs


def _time_per_time_step_s(spec: WavefrontSpec, platform: Platform, cores: int) -> float:
    prediction = predict(spec, platform, total_cores=cores)
    return prediction.time_per_time_step_s


def throughput_study(
    spec: WavefrontSpec,
    platform: Platform,
    total_cores_options: Sequence[int],
    *,
    parallel_jobs_options: Sequence[int] = (1, 2, 4, 8),
) -> list[ThroughputPoint]:
    """The Figure 7 study: time steps per problem per month vs partitioning."""
    points: list[ThroughputPoint] = []
    for total_cores in total_cores_options:
        for jobs in parallel_jobs_options:
            if jobs < 1 or total_cores % jobs != 0:
                continue
            partition = total_cores // jobs
            step_time = _time_per_time_step_s(spec, platform, partition)
            points.append(
                ThroughputPoint(
                    total_cores=total_cores,
                    parallel_jobs=jobs,
                    partition_cores=partition,
                    time_per_time_step_s=step_time,
                    time_steps_per_month_per_job=SECONDS_PER_MONTH / step_time,
                )
            )
    return points


@dataclass(frozen=True)
class PartitionTradeoffPoint:
    """One partition size of the Figure 8 trade-off curves.

    ``runtime_s`` (``R``) is the time for one simulation (all of ``spec``'s
    time steps) on its partition; ``throughput_per_s`` (``X``) is the number
    of simulations the whole machine completes per second.
    """

    available_cores: int
    partition_cores: int
    parallel_jobs: int
    runtime_s: float
    throughput_per_s: float

    @property
    def r_over_x(self) -> float:
        return self.runtime_s / self.throughput_per_s

    @property
    def r2_over_x(self) -> float:
        return self.runtime_s**2 / self.throughput_per_s


def partition_tradeoff(
    spec: WavefrontSpec,
    platform: Platform,
    available_cores: int,
    partition_sizes: Sequence[int],
) -> list[PartitionTradeoffPoint]:
    """Evaluate ``R/X`` and ``R^2/X`` for each candidate partition size."""
    points: list[PartitionTradeoffPoint] = []
    for partition in partition_sizes:
        if partition < 1 or partition > available_cores or available_cores % partition != 0:
            continue
        jobs = available_cores // partition
        prediction = predict(spec, platform, total_cores=partition)
        runtime_s = us_to_seconds(prediction.total_time_us)
        throughput = jobs / runtime_s
        points.append(
            PartitionTradeoffPoint(
                available_cores=available_cores,
                partition_cores=partition,
                parallel_jobs=jobs,
                runtime_s=runtime_s,
                throughput_per_s=throughput,
            )
        )
    if not points:
        raise ValueError("no valid partition sizes were supplied")
    return points


def optimal_parallel_jobs(
    spec: WavefrontSpec,
    platform: Platform,
    available_cores: int,
    *,
    criterion: str = "r_over_x",
    min_partition_cores: int = 1024,
) -> PartitionTradeoffPoint:
    """The Figure 9 quantity: the best number of parallel simulations.

    Partitions are powers-of-two divisions of ``available_cores`` with at
    least ``min_partition_cores`` cores each.  ``criterion`` selects the
    metric to minimise: ``"r_over_x"`` or ``"r2_over_x"``.
    """
    if criterion not in ("r_over_x", "r2_over_x"):
        raise ValueError("criterion must be 'r_over_x' or 'r2_over_x'")
    sizes = []
    partition = available_cores
    while partition >= max(min_partition_cores, 1):
        sizes.append(partition)
        if partition % 2 != 0:
            break
        partition //= 2
    points = partition_tradeoff(spec, platform, available_cores, sizes)
    return min(points, key=lambda p: getattr(p, criterion))
