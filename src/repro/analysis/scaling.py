"""Platform sizing: execution time versus system size (Section 5.2, Figure 6).

``strong_scaling`` evaluates a fixed problem on a range of processor counts
and reports the total run time (in days, the unit of Figure 6) together with
the computation/communication/pipeline-fill decomposition, from which the
diminishing-returns behaviour is evident.  ``weak_scaling`` keeps the
per-processor subdomain fixed (the configuration of Figure 12) and grows the
problem with the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult, PredictionRequest
from repro.backends.registry import BackendSpec
from repro.backends.service import predict_many
from repro.core.decomposition import ProcessorGrid, decompose
from repro.core.loggp import Platform
from repro.core.predictor import Prediction

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "strong_scaling",
    "weak_scaling",
    "parallel_efficiency",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One (processor count, predicted time) point of a scaling curve.

    ``prediction`` carries the analytic detail object when the curve was
    produced by an analytic backend (None for e.g. the simulator backend);
    ``result`` is the backend-agnostic evaluation.
    ``pipeline_fill_fraction`` is None when the backend cannot separate the
    fill component (the simulator measures only total time).
    """

    total_cores: int
    total_time_days: float
    time_per_time_step_s: float
    computation_fraction: float
    pipeline_fill_fraction: Optional[float]
    prediction: Optional[Prediction]
    result: Optional[BackendResult] = None

    @property
    def communication_fraction(self) -> float:
        return 1.0 - self.computation_fraction


@dataclass(frozen=True)
class ScalingCurve:
    """A strong- or weak-scaling curve."""

    application: str
    platform: str
    points: tuple[ScalingPoint, ...]
    mode: str

    def point(self, total_cores: int) -> ScalingPoint:
        for entry in self.points:
            if entry.total_cores == total_cores:
                return entry
        raise KeyError(f"no point for {total_cores} cores")

    def speedup(self, baseline_cores: Optional[int] = None) -> list[tuple[int, float]]:
        """Speed-up relative to the smallest (or given) processor count."""
        if not self.points:
            return []
        # Post-fan-out reductions on the caller (here and in
        # parallel_efficiency); these lambdas never cross the process-pool
        # boundary (RPR003 audit, PR 6).
        base = (
            self.point(baseline_cores)
            if baseline_cores is not None
            else min(self.points, key=lambda p: p.total_cores)
        )
        return [
            (p.total_cores, base.total_time_days / p.total_time_days)
            for p in self.points
        ]


def _point(result: BackendResult) -> ScalingPoint:
    return ScalingPoint(
        total_cores=result.grid.total_processors,
        total_time_days=result.total_time_days,
        time_per_time_step_s=result.time_per_time_step_s,
        computation_fraction=result.computation_fraction,
        pipeline_fill_fraction=result.pipeline_fill_fraction,
        prediction=result.prediction,
        result=result,
    )


def strong_scaling(
    spec: WavefrontSpec,
    platform: Platform,
    processor_counts: Sequence[int],
    *,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> ScalingCurve:
    """Fixed problem, growing machine (the Figure 6 study).

    ``backend`` selects the prediction engine (any registered backend, e.g.
    ``"simulator"`` to measure the curve instead of modelling it).
    ``workers``/``executor`` optionally fan the processor counts out over a
    pool (``executor="process"`` uses multiple cores - see
    :func:`repro.backends.service.predict_many`); the curve's point order
    always follows ``processor_counts``.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> curve = strong_scaling(lu_class("A"), cray_xt4(), [4, 16])
    >>> [point.total_cores for point in curve.points]
    [4, 16]
    >>> curve.point(16).time_per_time_step_s < curve.point(4).time_per_time_step_s
    True
    """
    if not processor_counts:
        raise ValueError("processor_counts must not be empty")
    requests = [
        PredictionRequest(spec, platform, total_cores=count)
        for count in processor_counts
    ]
    results = predict_many(requests, backend=backend, workers=workers, executor=executor)
    return ScalingCurve(
        application=spec.name,
        platform=platform.name,
        points=tuple(_point(result) for result in results),
        mode="strong",
    )


def weak_scaling(
    spec_builder: Callable[[ProcessorGrid], WavefrontSpec],
    platform: Platform,
    processor_counts: Sequence[int],
    *,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> ScalingCurve:
    """Fixed per-processor subdomain, growing machine (the Figure 12 setup).

    ``spec_builder(grid)`` receives the decomposed processor grid and must
    return the spec whose global problem matches that grid (e.g. 4x4x1000
    cells per processor); it runs in the calling process, only the model
    evaluations fan out over the optional pool.

    >>> from repro.apps.lu import lu
    >>> from repro.core.decomposition import ProblemSize
    >>> from repro.platforms import cray_xt4
    >>> curve = weak_scaling(
    ...     lambda grid: lu(ProblemSize(8 * grid.n, 8 * grid.m, 16)),
    ...     cray_xt4(), [4, 16])
    >>> curve.mode, len(curve.points)
    ('weak', 2)
    """
    if not processor_counts:
        raise ValueError("processor_counts must not be empty")
    requests = []
    for count in processor_counts:
        grid = decompose(count)
        requests.append(PredictionRequest(spec_builder(grid), platform, grid=grid))
    results = predict_many(requests, backend=backend, workers=workers, executor=executor)
    return ScalingCurve(
        application=requests[-1].spec.name,
        platform=platform.name,
        points=tuple(_point(result) for result in results),
        mode="weak",
    )


def parallel_efficiency(curve: ScalingCurve) -> list[tuple[int, float]]:
    """Classic strong-scaling efficiency: speed-up divided by core ratio.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> curve = strong_scaling(lu_class("A"), cray_xt4(), [4, 16])
    >>> parallel_efficiency(curve)[0]   # the baseline point is 1.0 by definition
    (4, 1.0)
    """
    if curve.mode != "strong":
        raise ValueError("parallel efficiency is defined for strong-scaling curves")
    base = min(curve.points, key=lambda p: p.total_cores)
    result = []
    for cores, speedup in curve.speedup():
        ratio = cores / base.total_cores
        result.append((cores, speedup / ratio))
    return result
