"""Platform sizing: execution time versus system size (Section 5.2, Figure 6).

``strong_scaling`` evaluates a fixed problem on a range of processor counts
and reports the total run time (in days, the unit of Figure 6) together with
the computation/communication/pipeline-fill decomposition, from which the
diminishing-returns behaviour is evident.  ``weak_scaling`` keeps the
per-processor subdomain fixed (the configuration of Figure 12) and grows the
problem with the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.core.decomposition import ProcessorGrid, decompose
from repro.core.loggp import Platform
from repro.core.predictor import Prediction, predict

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "strong_scaling",
    "weak_scaling",
    "parallel_efficiency",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One (processor count, predicted time) point of a scaling curve."""

    total_cores: int
    total_time_days: float
    time_per_time_step_s: float
    computation_fraction: float
    pipeline_fill_fraction: float
    prediction: Prediction

    @property
    def communication_fraction(self) -> float:
        return 1.0 - self.computation_fraction


@dataclass(frozen=True)
class ScalingCurve:
    """A strong- or weak-scaling curve."""

    application: str
    platform: str
    points: tuple[ScalingPoint, ...]
    mode: str

    def point(self, total_cores: int) -> ScalingPoint:
        for entry in self.points:
            if entry.total_cores == total_cores:
                return entry
        raise KeyError(f"no point for {total_cores} cores")

    def speedup(self, baseline_cores: Optional[int] = None) -> list[tuple[int, float]]:
        """Speed-up relative to the smallest (or given) processor count."""
        if not self.points:
            return []
        base = (
            self.point(baseline_cores)
            if baseline_cores is not None
            else min(self.points, key=lambda p: p.total_cores)
        )
        return [
            (p.total_cores, base.total_time_days / p.total_time_days)
            for p in self.points
        ]


def _point(prediction: Prediction) -> ScalingPoint:
    iteration = prediction.time_per_iteration_us
    return ScalingPoint(
        total_cores=prediction.grid.total_processors,
        total_time_days=prediction.total_time_days,
        time_per_time_step_s=prediction.time_per_time_step_s,
        computation_fraction=prediction.computation_fraction,
        pipeline_fill_fraction=(
            prediction.pipeline_fill_per_iteration_us / iteration if iteration > 0 else 0.0
        ),
        prediction=prediction,
    )


def strong_scaling(
    spec: WavefrontSpec,
    platform: Platform,
    processor_counts: Sequence[int],
) -> ScalingCurve:
    """Fixed problem, growing machine (the Figure 6 study)."""
    if not processor_counts:
        raise ValueError("processor_counts must not be empty")
    points = tuple(
        _point(predict(spec, platform, total_cores=count)) for count in processor_counts
    )
    return ScalingCurve(
        application=spec.name, platform=platform.name, points=points, mode="strong"
    )


def weak_scaling(
    spec_builder: Callable[[ProcessorGrid], WavefrontSpec],
    platform: Platform,
    processor_counts: Sequence[int],
) -> ScalingCurve:
    """Fixed per-processor subdomain, growing machine (the Figure 12 setup).

    ``spec_builder(grid)`` receives the decomposed processor grid and must
    return the spec whose global problem matches that grid (e.g. 4x4x1000
    cells per processor).
    """
    if not processor_counts:
        raise ValueError("processor_counts must not be empty")
    points = []
    application = None
    for count in processor_counts:
        grid = decompose(count)
        spec = spec_builder(grid)
        application = spec.name
        points.append(_point(predict(spec, platform, grid=grid)))
    assert application is not None
    return ScalingCurve(
        application=application, platform=platform.name, points=tuple(points), mode="weak"
    )


def parallel_efficiency(curve: ScalingCurve) -> list[tuple[int, float]]:
    """Classic strong-scaling efficiency: speed-up divided by core ratio."""
    if curve.mode != "strong":
        raise ValueError("parallel efficiency is defined for strong-scaling curves")
    base = min(curve.points, key=lambda p: p.total_cores)
    result = []
    for cores, speedup in curve.speedup():
        ratio = cores / base.total_cores
        result.append((cores, speedup / ratio))
    return result
