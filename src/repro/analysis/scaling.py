"""Platform sizing: execution time versus system size (Section 5.2, Figure 6).

``strong_scaling`` evaluates a fixed problem on a range of processor counts
and reports the total run time (in days, the unit of Figure 6) together with
the computation/communication/pipeline-fill decomposition, from which the
diminishing-returns behaviour is evident.  ``weak_scaling`` keeps the
per-processor subdomain fixed (the configuration of Figure 12) and grows the
problem with the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.core.decomposition import ProcessorGrid, decompose
from repro.core.loggp import Platform
from repro.core.predictor import Prediction, predict
from repro.util.sweep import parallel_map

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "strong_scaling",
    "weak_scaling",
    "parallel_efficiency",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One (processor count, predicted time) point of a scaling curve."""

    total_cores: int
    total_time_days: float
    time_per_time_step_s: float
    computation_fraction: float
    pipeline_fill_fraction: float
    prediction: Prediction

    @property
    def communication_fraction(self) -> float:
        return 1.0 - self.computation_fraction


@dataclass(frozen=True)
class ScalingCurve:
    """A strong- or weak-scaling curve."""

    application: str
    platform: str
    points: tuple[ScalingPoint, ...]
    mode: str

    def point(self, total_cores: int) -> ScalingPoint:
        for entry in self.points:
            if entry.total_cores == total_cores:
                return entry
        raise KeyError(f"no point for {total_cores} cores")

    def speedup(self, baseline_cores: Optional[int] = None) -> list[tuple[int, float]]:
        """Speed-up relative to the smallest (or given) processor count."""
        if not self.points:
            return []
        base = (
            self.point(baseline_cores)
            if baseline_cores is not None
            else min(self.points, key=lambda p: p.total_cores)
        )
        return [
            (p.total_cores, base.total_time_days / p.total_time_days)
            for p in self.points
        ]


def _point(prediction: Prediction) -> ScalingPoint:
    iteration = prediction.time_per_iteration_us
    return ScalingPoint(
        total_cores=prediction.grid.total_processors,
        total_time_days=prediction.total_time_days,
        time_per_time_step_s=prediction.time_per_time_step_s,
        computation_fraction=prediction.computation_fraction,
        pipeline_fill_fraction=(
            prediction.pipeline_fill_per_iteration_us / iteration if iteration > 0 else 0.0
        ),
        prediction=prediction,
    )


def _strong_scaling_point(spec: WavefrontSpec, platform: Platform, count: int) -> ScalingPoint:
    return _point(predict(spec, platform, total_cores=count))


def strong_scaling(
    spec: WavefrontSpec,
    platform: Platform,
    processor_counts: Sequence[int],
    *,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> ScalingCurve:
    """Fixed problem, growing machine (the Figure 6 study).

    ``workers``/``executor`` optionally fan the processor counts out over a
    pool (``executor="process"`` uses multiple cores - see
    :func:`repro.util.sweep.parallel_map`); the curve's point order always
    follows ``processor_counts``.
    """
    if not processor_counts:
        raise ValueError("processor_counts must not be empty")
    points = tuple(
        parallel_map(
            partial(_strong_scaling_point, spec, platform),
            processor_counts,
            workers,
            executor,
        )
    )
    return ScalingCurve(
        application=spec.name, platform=platform.name, points=points, mode="strong"
    )


def _weak_scaling_point(
    spec_builder: Callable[[ProcessorGrid], WavefrontSpec],
    platform: Platform,
    count: int,
) -> tuple[str, ScalingPoint]:
    grid = decompose(count)
    spec = spec_builder(grid)
    return spec.name, _point(predict(spec, platform, grid=grid))


def weak_scaling(
    spec_builder: Callable[[ProcessorGrid], WavefrontSpec],
    platform: Platform,
    processor_counts: Sequence[int],
    *,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> ScalingCurve:
    """Fixed per-processor subdomain, growing machine (the Figure 12 setup).

    ``spec_builder(grid)`` receives the decomposed processor grid and must
    return the spec whose global problem matches that grid (e.g. 4x4x1000
    cells per processor).  With ``executor="process"`` the builder must be
    picklable (a module-level function or partial, not a lambda).
    """
    if not processor_counts:
        raise ValueError("processor_counts must not be empty")
    results = parallel_map(
        partial(_weak_scaling_point, spec_builder, platform),
        processor_counts,
        workers,
        executor,
    )
    application = results[-1][0]
    return ScalingCurve(
        application=application,
        platform=platform.name,
        points=tuple(point for _, point in results),
        mode="weak",
    )


def parallel_efficiency(curve: ScalingCurve) -> list[tuple[int, float]]:
    """Classic strong-scaling efficiency: speed-up divided by core ratio."""
    if curve.mode != "strong":
        raise ValueError("parallel efficiency is defined for strong-scaling curves")
    base = min(curve.points, key=lambda p: p.total_cores)
    result = []
    for cores, speedup in curve.speedup():
        ratio = cores / base.total_cores
        result.append((cores, speedup / ratio))
    return result
