"""Processor-array aspect-ratio study (an ablation on the data decomposition).

The paper (and the earlier Mathis et al. work it cites) notes that the data
decomposition is itself a design choice.  For a fixed processor count ``P``
the logical array can be any ``n x m`` factorisation; the aspect ratio trades
the two pipeline-fill directions against each other and changes the east-west
vs north-south message sizes.  This study evaluates every factorisation (or a
requested subset) with the plug-and-play model and reports the best one -
near-square for cubic problems, elongated when the problem itself is
elongated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.base import WavefrontSpec
from repro.backends.base import BackendResult, PredictionRequest
from repro.backends.registry import BackendSpec
from repro.backends.service import predict_many
from repro.core.decomposition import ProcessorGrid
from repro.core.loggp import Platform
from repro.core.predictor import Prediction

__all__ = ["DecompositionPoint", "all_factorisations", "decomposition_study", "best_decomposition"]


@dataclass(frozen=True)
class DecompositionPoint:
    """Model outputs for one ``n x m`` factorisation of the processor count."""

    grid: ProcessorGrid
    time_per_iteration_us: float
    pipeline_fill_us: Optional[float]
    prediction: Optional[Prediction]
    result: Optional[BackendResult] = None

    @property
    def aspect_ratio(self) -> float:
        """Width over height of the logical array (>= values mean wider)."""
        return self.grid.n / self.grid.m


def all_factorisations(total_processors: int) -> List[ProcessorGrid]:
    """Every ``n x m`` factorisation of ``total_processors`` (n, m >= 1).

    >>> [(grid.n, grid.m) for grid in all_factorisations(6)]
    [(6, 1), (3, 2), (2, 3), (1, 6)]
    """
    if total_processors < 1:
        raise ValueError("total_processors must be positive")
    grids = []
    for m in range(1, total_processors + 1):
        if total_processors % m == 0:
            grids.append(ProcessorGrid(n=total_processors // m, m=m))
    return grids


def decomposition_study(
    spec: WavefrontSpec,
    platform: Platform,
    total_processors: int,
    *,
    grids: Sequence[ProcessorGrid] | None = None,
    max_aspect_ratio: float | None = 64.0,
    backend: BackendSpec = "analytic-fast",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> List[DecompositionPoint]:
    """Evaluate the model for each candidate factorisation of ``total_processors``.

    ``max_aspect_ratio`` discards extremely elongated arrays (1 x P and
    friends) which are never competitive and only slow the study down; pass
    ``None`` to keep them all.  ``backend`` selects the prediction engine.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> points = decomposition_study(lu_class("A"), cray_xt4(), 16)
    >>> [(p.grid.n, p.grid.m) for p in points]
    [(16, 1), (8, 2), (4, 4), (2, 8), (1, 16)]
    """
    if grids is None:
        grids = all_factorisations(total_processors)
    kept: List[ProcessorGrid] = []
    for grid in grids:
        if grid.total_processors != total_processors:
            raise ValueError(
                f"grid {grid.n}x{grid.m} does not match P={total_processors}"
            )
        ratio = max(grid.n / grid.m, grid.m / grid.n)
        if max_aspect_ratio is not None and ratio > max_aspect_ratio:
            continue
        kept.append(grid)
    if not kept:
        raise ValueError("no factorisations left after filtering")
    requests = [PredictionRequest(spec, platform, grid=grid) for grid in kept]
    results = predict_many(requests, backend=backend, workers=workers, executor=executor)
    return [
        DecompositionPoint(
            grid=grid,
            time_per_iteration_us=result.time_per_iteration_us,
            pipeline_fill_us=result.pipeline_fill_per_iteration_us,
            prediction=result.prediction,
            result=result,
        )
        for grid, result in zip(kept, results)
    ]


def best_decomposition(
    spec: WavefrontSpec,
    platform: Platform,
    total_processors: int,
    **kwargs,
) -> DecompositionPoint:
    """The factorisation with the smallest predicted iteration time.

    >>> from repro.apps.workloads import lu_class
    >>> from repro.platforms import cray_xt4
    >>> best_decomposition(lu_class("A"), cray_xt4(), 16).grid.total_processors
    16
    """
    points = decomposition_study(spec, platform, total_processors, **kwargs)
    # Post-fan-out reduction on the caller; the lambda never crosses the
    # process-pool boundary (RPR003 audit, PR 6).
    return min(points, key=lambda p: p.time_per_iteration_us)
