"""Declarative experiment campaigns with a persistent result store.

The paper's contribution is a *matrix* of predictions - Tables 4-7 and
Figures 5-8 sweep applications x platforms x core counts x tile heights and
cross-check model against measurement.  This package turns such a matrix
into a single declarative artifact and makes running it cheap, resumable and
reportable:

**Spec** (:mod:`repro.campaigns.spec`)
    :class:`CampaignSpec` names the axes; :meth:`CampaignSpec.points`
    expands them into content-hash-keyed :class:`CampaignPoint` requests.
    Specs load from dicts or JSON files, and four built-ins ship as package
    data (:mod:`repro.campaigns.builtin`).

**Store** (:mod:`repro.campaigns.store`)
    :class:`ResultStore` persists every evaluated point as one JSON line in
    a sharded segment log under ``.repro-cache/<name>.store`` (or any
    ``--store`` path; ``$REPRO_CACHE_DIR`` overrides the cache directory).
    Records are routed to 16 segment files by content-hash prefix, each with
    an index sidecar, so opening a store parses the indexes - not the record
    bodies - and concurrent appenders never interleave torn lines.  Keys are
    content hashes, so re-runs and interrupted campaigns compute only the
    delta; single-file v1 stores migrate in place on first open.

**Runner** (:mod:`repro.campaigns.runner`)
    :class:`CampaignRunner` diffs the spec against the store and batches the
    missing points through :func:`repro.backends.service.predict_many` (one
    call per backend group, preserving dedup/caching/pool fan-out), group-
    committing each batch via :meth:`ResultStore.put_many`.  ``shards=K``
    fans the pending points out across ``K`` worker processes partitioned by
    stable content hash; ``resume=True`` salvages the scratch stores of a
    killed fan-out run.

**Report** (:mod:`repro.campaigns.report`)
    :func:`campaign_report` renders Markdown tables - including the
    model-vs-measurement error columns of Tables 4-7 - and
    :func:`write_report` emits the Figure 5/6 CSV data files.

End to end:

>>> import tempfile, os
>>> from repro.campaigns import CampaignSpec, run_campaign, campaign_report
>>> spec = CampaignSpec(
...     name="mini", apps=("lu-classA",), total_cores=(4, 16),
...     backends=("analytic-fast", "analytic-exact"), baseline="analytic-exact",
... )
>>> store = os.path.join(tempfile.mkdtemp(), "mini.store")
>>> run_campaign(spec, store=store).computed
4
>>> run_campaign(spec, store=store).computed   # second run: all cached
0
>>> "# Campaign report: mini" in campaign_report(store)
True

The CLI front end is ``wavebench campaign run|report|list|clean``.
"""

from repro.campaigns.builtin import builtin_campaigns, get_campaign
from repro.campaigns.report import campaign_report, write_report
from repro.campaigns.runner import (
    CampaignRunner,
    CampaignRunSummary,
    run_campaign,
)
from repro.campaigns.spec import (
    CampaignPoint,
    CampaignSpec,
    apply_htile,
    load_campaign_file,
    partition_points,
    shard_of,
)
from repro.campaigns.store import (
    ResultStore,
    default_store_path,
    find_project_root,
    repro_cache_dir,
)

__all__ = [
    "CampaignPoint",
    "CampaignRunSummary",
    "CampaignRunner",
    "CampaignSpec",
    "ResultStore",
    "apply_htile",
    "builtin_campaigns",
    "campaign_report",
    "default_store_path",
    "find_project_root",
    "get_campaign",
    "load_campaign_file",
    "partition_points",
    "repro_cache_dir",
    "run_campaign",
    "shard_of",
    "write_report",
]
