"""Built-in campaign definitions, shipped as package data.

Seven campaigns cover the paper's experimental matrix plus the
heterogeneity, fault-tolerance and design-optimisation axes; each is a
JSON file
under ``repro/campaigns/data/`` in the :func:`CampaignSpec.from_dict
<repro.campaigns.spec.CampaignSpec.from_dict>` schema (see
``docs/campaigns.md``), so they double as worked examples for writing your
own:

* ``paper-validation`` - model vs simulated measurement over the Tables 4-7
  matrix (three applications, single- and dual-core nodes, three core
  counts), with the simulator as the error baseline;
* ``strong-scaling-sweep`` - the Figure 6 execution-time-vs-system-size
  curves out to 131,072 cores;
* ``htile-sweep`` - the Figure 5 tile-height optimisation;
* ``multicore-design`` - the Figure 10 single- vs dual-core node comparison;
* ``heterogeneity-study`` - straggler count x slowdown x background noise
  on the transport benchmarks (scenarios beyond the paper's homogeneous
  machine; see ``docs/platforms.md``);
* ``fault-tolerance-study`` - time-to-solution vs MTBF x checkpoint
  interval, comparing the analytic bounded expected-rework correction
  against the fault-injecting simulator (see ``docs/faults.md``);
* ``optimization-study`` - the Htile grid crossed with single- and
  dual-core node designs, whose report's design-optima table reproduces
  the paper's configuration conclusions automatically (see
  ``docs/optimize.md``).

>>> sorted(builtin_campaigns())
['fault-tolerance-study', 'heterogeneity-study', 'htile-sweep', 'multicore-design', 'optimization-study', 'paper-validation', 'strong-scaling-sweep']
>>> get_campaign("paper-validation").baseline
'simulator'
"""

from __future__ import annotations

import json
from functools import lru_cache
from importlib.resources import files

from repro.campaigns.spec import CampaignSpec

__all__ = ["builtin_campaigns", "get_campaign"]


@lru_cache(maxsize=1)
def _load_builtins() -> dict[str, CampaignSpec]:  # repro: noqa[RPR002] static packaged-data registry, immutable for the process lifetime
    data_dir = files("repro.campaigns") / "data"
    campaigns: dict[str, CampaignSpec] = {}
    for entry in sorted(data_dir.iterdir(), key=lambda e: e.name):
        if not entry.name.endswith(".json"):
            continue
        spec = CampaignSpec.from_dict(json.loads(entry.read_text(encoding="utf-8")))
        if spec.name in campaigns:
            raise ValueError(f"duplicate built-in campaign name {spec.name!r}")
        campaigns[spec.name] = spec
    return campaigns


def builtin_campaigns() -> dict[str, CampaignSpec]:
    """Name -> spec mapping of the shipped campaign definitions (a copy)."""
    return dict(_load_builtins())


def get_campaign(name: str) -> CampaignSpec:
    """Look up a built-in campaign by name.

    >>> get_campaign("htile-sweep").total_cores
    (4096,)
    """
    campaigns = _load_builtins()
    try:
        return campaigns[name]
    except KeyError:
        known = ", ".join(sorted(campaigns))
        raise KeyError(f"unknown campaign {name!r}; built-ins: {known}") from None
