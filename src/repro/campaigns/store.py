"""Persistent on-disk result store: sharded segment logs, content-hash keys.

The store is the campaign subsystem's durability layer: every evaluated
point is persisted as one JSON record keyed by the point's content hash, so

* an interrupted campaign resumes by re-running and computing only the
  missing keys;
* a re-run of an already-complete campaign performs **zero** backend
  computations;
* overlapping campaigns (e.g. a scaling sweep and a validation matrix that
  share configurations) reuse each other's results when pointed at the same
  store.

A store is a *directory* of 16 append-only segment files routed by
content-hash prefix, each with an index sidecar (see
:mod:`repro.campaigns.segments` for the byte-level layout and durability
protocol).  Opening a store parses only the sidecars - O(index), not
O(record bodies) - which is what keeps million-point campaigns cheap to
resume.  Appends are cross-process-safe (``O_APPEND`` + advisory lock) and
group-committed: :meth:`ResultStore.put_many` pays one ``fsync`` per touched
segment per batch instead of one per record.  Record lines stay plain JSON,
so segments remain inspectable with ``grep``/``jq``.

Corrupt lines never cost more than themselves: intact records around a torn
or garbled line are salvaged, the garbage is quarantined into
``<store>/quarantine.jsonl`` with a one-line warning, and ``strict=True``
opts back into fail-loud loading.  Version-1 single-file ``.jsonl`` stores
are migrated to the sharded layout transparently on first open (the original
file is preserved inside the new directory as ``legacy-v1.jsonl.migrated``).

>>> import tempfile, os
>>> path = os.path.join(tempfile.mkdtemp(), "demo.store")
>>> store = ResultStore(path)
>>> store.put("abc123", {"point": {}, "result": {"time_per_iteration_us": 1.0}})
>>> "abc123" in store
True
>>> ResultStore(path).get("abc123")["result"]["time_per_iteration_us"]
1.0
"""

from __future__ import annotations

import json
import logging
import os
import shutil
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Optional, Tuple, Union

from repro.campaigns.segments import (
    SEGMENT_NAMES,
    STORE_VERSION,
    SegmentCorruption,
    SegmentLog,
)

__all__ = [
    "ResultStore",
    "as_store",
    "default_store_path",
    "find_project_root",
    "repro_cache_dir",
    "CACHE_DIR_ENV",
]

logger = logging.getLogger("repro.campaigns.store")

#: Environment variable overriding where the default ``.repro-cache`` lives.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Files whose presence marks a directory as a project root.
_ROOT_MARKERS = (".repro-cache", "pyproject.toml", "setup.py", "setup.cfg", ".git")

#: Name of the campaign-spec header file inside a store directory.
_HEADER_NAME = "header.json"

#: Where a legacy single-file store is preserved after migration.
_LEGACY_BACKUP_NAME = "legacy-v1.jsonl.migrated"


def find_project_root(start: Optional[Union[str, Path]] = None) -> Optional[Path]:
    """The nearest ancestor of ``start`` (default: CWD) that looks like a
    project root - holds a ``.repro-cache``, ``pyproject.toml``, ``setup.py``,
    ``setup.cfg`` or ``.git`` - or ``None`` when no ancestor qualifies."""
    start = Path(start) if start is not None else Path.cwd()
    for candidate in (start, *start.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return None


def repro_cache_dir() -> Path:
    """Where default stores live: stable across working directories.

    Resolution order:

    1. the :data:`CACHE_DIR_ENV` (``REPRO_CACHE_DIR``) environment variable;
    2. ``<project root>/.repro-cache``, discovered by walking up from the
       current directory (so ``wavebench campaign run`` from ``docs/`` hits
       the same store as from the repository root);
    3. ``<CWD>/.repro-cache`` when nothing above matches.

    >>> import os
    >>> os.environ["REPRO_CACHE_DIR"] = "/tmp/repro-cache-doc-demo"
    >>> str(repro_cache_dir())
    '/tmp/repro-cache-doc-demo'
    >>> del os.environ["REPRO_CACHE_DIR"]
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    root = find_project_root()
    return (root if root is not None else Path.cwd()) / ".repro-cache"


def default_store_path(campaign_name: str) -> Path:
    """The conventional store location for a named campaign.

    Sharded stores use a ``.store`` directory; when only a version-1
    ``<name>.jsonl`` file exists from an older run, that path is returned
    instead so opening it migrates the legacy store in place.

    >>> import os
    >>> os.environ["REPRO_CACHE_DIR"] = "/tmp/repro-cache-doc-demo"
    >>> str(default_store_path("paper-validation"))
    '/tmp/repro-cache-doc-demo/paper-validation.store'
    >>> del os.environ["REPRO_CACHE_DIR"]
    """
    cache = repro_cache_dir()
    sharded = cache / f"{campaign_name}.store"
    legacy = cache / f"{campaign_name}.jsonl"
    if legacy.exists() and not sharded.exists():
        return legacy
    return sharded


class ResultStore:
    """Sharded, append-only store of campaign results, keyed by content hash.

    The store keeps an in-memory *index* (``key -> byte range``) mirroring
    the segment sidecars; record bodies stay on disk until asked for.  A
    single instance can be used through a whole run while staying
    crash-safe: :meth:`put_many` group-commits each batch (data before
    index, one fsync per touched segment), and :meth:`put` is the
    single-record convenience on top.

    Record lines have ``{"kind": "result", "key": ..., "point": ...,
    "result": ...}`` - the same shape as the version-1 format; the campaign
    definition lives in the store's ``header.json`` (latest wins).

    ``strict=True`` makes corrupt lines fail the open loudly; the default
    salvages every intact record and quarantines the garbage.
    """

    def __init__(self, path: Union[str, Path], *, strict: bool = False):
        self.path = Path(path)
        self.strict = strict
        self._segments = SegmentLog(self.path, strict=strict)
        self._index: dict[str, Any] = {}
        self._spec: Optional[dict[str, Any]] = None
        self._migration_quarantined = 0
        self._open()

    # -- loading ---------------------------------------------------------------------

    def _open(self) -> None:
        tmp = self._migration_tmp()
        if not self.path.exists() and tmp.is_dir():
            # A crash after the legacy file moved into the fully-built
            # migration directory but before the final rename: finish it.
            os.replace(tmp, self.path)
        if self.path.is_file():
            self._migrate_legacy_file()
        if not self.path.is_dir():
            return
        self._index = self._segments.load()
        if self._segments.quarantined:
            logger.warning(
                "store %s: quarantined %d corrupt line(s) to %s (every other "
                "record was salvaged)",
                self.path,
                self._segments.quarantined,
                self._segments.quarantine_path,
            )
        header = self.path / _HEADER_NAME
        if header.exists():
            try:
                self._spec = json.loads(header.read_text(encoding="utf-8")).get("spec")
            except json.JSONDecodeError:
                if self.strict:
                    raise SegmentCorruption(
                        f"store {self.path} has an unreadable {_HEADER_NAME}"
                    ) from None
                logger.warning("store %s: ignoring unreadable header.json", self.path)

    def _migration_tmp(self) -> Path:
        return self.path.with_name(self.path.name + ".migrating")

    def _migrate_legacy_file(self) -> None:
        """Rewrite a version-1 single-file store into the sharded layout.

        The new directory is fully built (segments, sidecars, header,
        quarantine) under a temporary name, the original file is moved
        *inside* it as a backup, and only then is the directory renamed
        over the old path - every intermediate crash state is recoverable.
        """
        records, spec, bad_lines = _parse_legacy_lines(
            self.path, self.path.read_text(encoding="utf-8"), strict=self.strict
        )
        tmp = self._migration_tmp()
        if tmp.exists():
            shutil.rmtree(tmp)
        staged = SegmentLog(tmp)
        staged.ensure_layout()
        staged.append(
            [
                (key, (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8"))
                for key, entry in records
            ]
        )
        if bad_lines:
            with staged.quarantine_path.open("a", encoding="utf-8") as handle:
                for line_number, raw in bad_lines:
                    wrapper = {
                        "source": self.path.name,
                        "line_number": line_number,
                        "line": raw,
                    }
                    handle.write(json.dumps(wrapper, sort_keys=True) + "\n")
            logger.warning(
                "store %s: quarantined %d corrupt line(s) during migration",
                self.path,
                len(bad_lines),
            )
            self._migration_quarantined = len(bad_lines)
        if spec is not None:
            _write_header(tmp, spec)
        os.replace(self.path, tmp / _LEGACY_BACKUP_NAME)
        os.replace(tmp, self.path)

    # -- querying --------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> list[str]:
        return list(self._index)

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The stored record for ``key``, or ``None`` (one seek + parse)."""
        entry = self._index.get(key)
        if entry is None:
            return None
        return self._segments.read(entry)

    def records(self) -> Iterator[dict[str, Any]]:
        """All stored result records, streamed segment by segment."""
        for entry in self._index.values():
            yield self._segments.read(entry)

    @property
    def spec_dict(self) -> Optional[dict[str, Any]]:
        """The campaign definition recorded in the store header, if any."""
        return self._spec

    @property
    def quarantined(self) -> int:
        """How many corrupt lines this open salvaged into the quarantine."""
        return self._segments.quarantined + self._migration_quarantined

    @property
    def quarantine_path(self) -> Path:
        return self._segments.quarantine_path

    # -- writing ---------------------------------------------------------------------

    def set_spec(self, spec_dict: Mapping[str, Any]) -> None:
        """Record the campaign definition in the store header (latest wins).

        A no-op when the stored spec already matches, so repeated runs of
        the same campaign never touch the header.
        """
        spec_dict = dict(spec_dict)
        if self._spec == spec_dict:
            return
        self._segments.ensure_layout()
        _write_header(self.path, spec_dict)
        self._spec = spec_dict

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Persist one result record under ``key`` (idempotent per key)."""
        self.put_many([(key, record)])

    def put_many(self, items: Iterable[Tuple[str, Mapping[str, Any]]]) -> int:
        """Group-commit a batch of ``(key, record)`` pairs; returns how many
        were new.

        Keys already present (in the store or earlier in the same batch)
        are skipped, so the call is idempotent.  The whole batch costs one
        ``flush`` + ``fsync`` per touched segment - this is the campaign
        runner's throughput path - while a crash mid-call never loses
        previously committed batches.
        """
        batch: list[tuple[str, bytes]] = []
        staged: set[str] = set()
        for key, record in items:
            if key in self._index or key in staged:
                continue
            if not key or any(c.isspace() for c in key):
                raise ValueError(f"store keys must be non-empty and space-free: {key!r}")
            entry = {"kind": "result", "key": key}
            entry.update(
                (k, v) for k, v in record.items() if k not in ("kind", "key")
            )
            batch.append(
                (key, (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8"))
            )
            staged.add(key)
        if not batch:
            return 0
        for placed in self._segments.append(batch):
            self._index[placed.key] = placed
        return len(batch)

    def merge_from(self, other: Union[str, Path, "ResultStore"]) -> int:
        """Copy every record of ``other`` not already present; returns the
        count.  Used to fold shard-worker scratch stores into the main
        store after (or while resuming) a fan-out run."""
        other = as_store(other)
        added = 0
        batch: list[tuple[str, dict[str, Any]]] = []
        for record in other.records():
            key = record["key"]
            if key in self._index:
                continue
            batch.append((key, record))
            if len(batch) >= 4096:
                added += self.put_many(batch)
                batch = []
        added += self.put_many(batch)
        if self._spec is None and other.spec_dict is not None:
            self.set_spec(other.spec_dict)
        return added

    # -- maintenance -----------------------------------------------------------------

    def compact(self) -> dict[str, Any]:
        """Rewrite the segments keeping only live records.

        Drops superseded duplicate lines (last-wins re-appends), the
        quarantined garbage bytes and the legacy-migration backup; returns
        ``{"segments_rewritten", "records", "bytes_reclaimed"}``.
        """
        result = self._segments.compact(list(self._index.values()))
        self._index = result["index"]
        backup = self.path / _LEGACY_BACKUP_NAME
        if backup.exists():
            backup.unlink()
        return result["stats"]

    def scratch_root(self) -> Path:
        """Where shard workers park their scratch stores (``<store>/shards``)."""
        return self.path / "shards"

    def scratch_stores(self) -> list[Path]:
        """Scratch stores left by an interrupted sharded run, oldest first."""
        return list(self._segments.iter_scratch_roots())

    def close(self) -> None:
        """Release cached segment read handles (reopened on demand)."""
        self._segments.close()

    def clean(self) -> bool:
        """Delete the store - segments, sidecars, quarantine, header, shard
        scratch - and, when that leaves the conventional ``.repro-cache``
        directory empty, the cache directory itself.  Returns ``True`` when
        anything was removed."""
        self._index.clear()
        self._spec = None
        removed = False
        if self.path.is_file():
            self.path.unlink()
            removed = True
        elif self.path.is_dir():
            removed = self._segments.remove()
        tmp = self._migration_tmp()
        if tmp.is_dir():
            shutil.rmtree(tmp)
            removed = True
        parent = self.path.parent
        if (
            parent.name == ".repro-cache"
            and parent.is_dir()
            and not any(parent.iterdir())
        ):
            parent.rmdir()
        return removed


def _write_header(root: Path, spec_dict: Mapping[str, Any]) -> None:
    """Atomically replace the store header (write-temp + rename + fsync)."""
    header = root / _HEADER_NAME
    tmp = root / (_HEADER_NAME + ".tmp")
    payload = {"version": STORE_VERSION, "spec": dict(spec_dict)}
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, header)


def _parse_legacy_lines(
    path: Path, text: str, *, strict: bool
) -> tuple[
    list[tuple[str, dict[str, Any]]],
    Optional[dict[str, Any]],
    list[tuple[int, str]],
]:
    """Parse a version-1 store file with salvage semantics.

    Returns ``(records, spec, bad_lines)`` where ``records`` is an ordered
    ``(key, entry)`` list with last-wins de-duplication applied.  With
    ``strict=True`` any unparsable non-final line raises (the historical
    behaviour); by default it is reported in ``bad_lines`` for quarantine
    and every intact line is kept.
    """
    lines = text.splitlines()
    records: dict[str, dict[str, Any]] = {}
    spec: Optional[dict[str, Any]] = None
    bad_lines: list[tuple[int, str]] = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                # A truncated final line is the signature of a crash
                # mid-append; it is not corruption worth quarantining.
                continue
            if strict:
                raise SegmentCorruption(
                    f"store file {path} is corrupt at line {index + 1}"
                ) from None
            bad_lines.append((index + 1, line))
            continue
        kind = entry.get("kind") if isinstance(entry, dict) else None
        if kind == "campaign":
            spec = entry.get("spec")
        elif kind == "result" and isinstance(entry.get("key"), str):
            records.pop(entry["key"], None)  # re-append keeps last-wins order
            records[entry["key"]] = entry
        # Other well-formed JSON lines are ignored (forward compatibility),
        # exactly as the version-1 loader did.
    return list(records.items()), spec, bad_lines


def as_store(store: Union[str, Path, ResultStore]) -> ResultStore:
    """Coerce a path-or-store argument into an open :class:`ResultStore`."""
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)
