"""Persistent on-disk result store: append-only JSON lines, content-hash keys.

The store is the campaign subsystem's durability layer: every evaluated
point is appended as one JSON line keyed by the point's content hash, so

* an interrupted campaign resumes by re-running and computing only the
  missing keys;
* a re-run of an already-complete campaign performs **zero** backend
  computations;
* overlapping campaigns (e.g. a scaling sweep and a validation matrix that
  share configurations) reuse each other's results when pointed at the same
  store file.

The file format is deliberately trivial - one JSON object per line - so
stores can be inspected with ``grep``/``jq`` and survive partial writes: a
truncated final line (a crash mid-append) is ignored on load.  The campaign
spec itself is stored as a header line, which is what lets
``wavebench campaign report --store PATH`` reconstruct the report without
being told the campaign name.

>>> import tempfile, os
>>> path = os.path.join(tempfile.mkdtemp(), "demo.jsonl")
>>> store = ResultStore(path)
>>> store.put("abc123", {"point": {}, "result": {"time_per_iteration_us": 1.0}})
>>> "abc123" in store
True
>>> ResultStore(path).get("abc123")["result"]["time_per_iteration_us"]
1.0
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Union

__all__ = ["ResultStore", "as_store", "default_store_path"]

#: Directory used when no explicit ``--store`` path is given.
DEFAULT_STORE_DIR = Path(".repro-cache")

#: Store file format version, recorded in the header line.
STORE_VERSION = 1


def default_store_path(campaign_name: str) -> Path:
    """The conventional store location for a named campaign.

    >>> str(default_store_path("paper-validation"))
    '.repro-cache/paper-validation.jsonl'
    """
    return DEFAULT_STORE_DIR / f"{campaign_name}.jsonl"


class ResultStore:
    """Append-only JSON-lines store of campaign results, keyed by content hash.

    The store keeps an in-memory index (``key -> record``) mirroring the
    file; :meth:`put` appends to the file *and* updates the index, so a
    single instance can be used through a whole run while staying crash-safe
    (each record is flushed as soon as it is computed).

    Record lines have ``{"kind": "result", "key": ..., "point": ...,
    "result": ...}``; a ``{"kind": "campaign", "spec": ...}`` header carries
    the campaign definition (the most recent header wins).
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._records: dict[str, dict[str, Any]] = {}
        self._spec: Optional[dict[str, Any]] = None
        self._load()

    # -- loading ---------------------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # A truncated final line is the signature of a crash
                    # mid-append; everything before it is intact.
                    continue
                raise ValueError(
                    f"store file {self.path} is corrupt at line {index + 1}"
                ) from None
            kind = entry.get("kind")
            if kind == "campaign":
                self._spec = entry.get("spec")
            elif kind == "result" and "key" in entry:
                self._records[entry["key"]] = entry

    # -- querying --------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> list[str]:
        return list(self._records)

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The stored record for ``key``, or ``None``."""
        return self._records.get(key)

    def records(self) -> Iterator[dict[str, Any]]:
        """All stored result records, in insertion order."""
        return iter(self._records.values())

    @property
    def spec_dict(self) -> Optional[dict[str, Any]]:
        """The campaign definition recorded in the store header, if any."""
        return self._spec

    # -- writing ---------------------------------------------------------------------

    def _append(self, entry: Mapping[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def set_spec(self, spec_dict: Mapping[str, Any]) -> None:
        """Record the campaign definition (header line; latest wins).

        A no-op when the stored spec already matches, so repeated runs of the
        same campaign do not grow the file.
        """
        spec_dict = dict(spec_dict)
        if self._spec == spec_dict:
            return
        self._append({"kind": "campaign", "version": STORE_VERSION, "spec": spec_dict})
        self._spec = spec_dict

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Persist one result record under ``key`` (idempotent per key)."""
        if key in self._records:
            return
        entry = {"kind": "result", "key": key, **record}
        self._append(entry)
        self._records[key] = entry

    # -- maintenance -----------------------------------------------------------------

    def clean(self) -> bool:
        """Delete the backing file; returns True when a file was removed."""
        self._records.clear()
        self._spec = None
        if self.path.exists():
            self.path.unlink()
            return True
        return False


def as_store(store: Union[str, Path, ResultStore]) -> ResultStore:
    """Coerce a path-or-store argument into an open :class:`ResultStore`."""
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)
