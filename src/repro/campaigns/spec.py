"""Declarative campaign specifications: axes in, request list out.

A :class:`CampaignSpec` names the *matrix* of configurations a study wants
evaluated - applications x platforms x core counts x tile heights x
prediction backends x noise seeds x scenario axes (placements, speed
profiles, noise models, fault models and their seeds) - the way the
paper's Tables 4-7 and
Figures 5-8 each sweep a handful of axes and cross-check model against
measurement.  The spec is a plain frozen dataclass, loadable from a dict or
a JSON file, so campaigns can be versioned alongside the code (the built-in
definitions under ``repro/campaigns/data/`` are exactly such files).

:meth:`CampaignSpec.points` expands the axes into an ordered list of
:class:`CampaignPoint` objects; each point knows its content-hash
:meth:`~CampaignPoint.key` (the persistent result store's identity), how to
build its :class:`~repro.backends.base.PredictionRequest` and which backend
evaluates it.

>>> spec = CampaignSpec(name="demo", apps=("lu-classA",), total_cores=(4, 16))
>>> [point.total_cores for point in spec.points()]
[4, 16]
>>> spec.points()[0].key() == spec.points()[0].key()
True
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, replace
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Tuple, Union

from repro.apps.base import WavefrontSpec
from repro.apps.sweep3d import Sweep3DConfig
from repro.apps.workloads import standard_workloads
from repro.backends.base import PredictionRequest
from repro.backends.registry import BackendSpec
from repro.backends.simulator import SimulatorBackend
from repro.platforms import (
    get_platform,
    parse_fault_model,
    parse_noise_model,
    parse_placement,
    parse_speed_profile,
)
from repro.util.caching import register_cache_clearer

__all__ = [
    "CampaignPoint",
    "CampaignSpec",
    "apply_htile",
    "load_campaign_file",
    "partition_points",
    "shard_of",
]


def apply_htile(spec: WavefrontSpec, htile: float) -> WavefrontSpec:
    """Return ``spec`` re-tiled to ``htile``, respecting Sweep3D's blocking.

    Sweep3D exposes its tile height through the ``mk``/``mmi`` blocking
    parameters, so the requested value must be realisable as an integral
    ``mk`` (:meth:`repro.apps.sweep3d.Sweep3DConfig.for_htile` raises
    ``ValueError`` otherwise - the multiples of ``mmi/mmo = 0.5`` for the
    default blocking); other applications take the height directly.  The
    campaign runner builds every request up front, so an unrealisable value
    fails the run before any computation starts.

    >>> from repro.apps.workloads import chimaera_240cubed
    >>> apply_htile(chimaera_240cubed(), 4.0).htile
    4.0
    >>> from repro.apps.workloads import sweep3d_20m
    >>> apply_htile(sweep3d_20m(), 2.2)
    Traceback (most recent call last):
        ...
    ValueError: Htile=2.2 is not representable with mmi=3, mmo=6
    """
    if spec.name == "sweep3d":
        return spec.with_htile(Sweep3DConfig.for_htile(htile).htile)
    return spec.with_htile(htile)


def shard_of(key: str, shards: int) -> int:
    """The shard a store key belongs to under a ``shards``-way partition.

    The assignment is a pure function of the content-hash key, so it is
    stable across runs, processes and orderings - a killed ``--shards K``
    campaign resumes with every pending point routed back to the same
    worker's partition.

    >>> shard_of("ab12cd34ef56ab78", 4) in range(4)
    True
    >>> shard_of("ab12cd34ef56ab78", 4) == shard_of("ab12cd34ef56ab78", 4)
    True
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    try:
        value = int(key, 16)
    except ValueError:
        value = int(hashlib.sha256(key.encode("utf-8")).hexdigest(), 16)
    return value % shards


def partition_points(
    points: Sequence["CampaignPoint"], shards: int
) -> list[list["CampaignPoint"]]:
    """Split ``points`` into ``shards`` stable partitions by content hash.

    Every point lands in partition :func:`shard_of` of its key; partitions
    preserve the input order.  Empty partitions are kept so the caller can
    zip the result against worker slots.
    """
    partitions: list[list[CampaignPoint]] = [[] for _ in range(shards)]
    for point in points:
        partitions[shard_of(point.key(), shards)].append(point)
    return partitions


# Campaign matrices repeat the same few (app, htile) and (platform, scenario)
# combinations across thousands of core counts; memoising the built value
# objects keeps million-point expansion cheap *and* maximises request dedup
# in the backend service (shared frozen instances hash once - see
# repro.util.caching.cached_field_hash).
@lru_cache(maxsize=1024)
def _build_workload(app: str, htile: Optional[float]) -> WavefrontSpec:
    registry = standard_workloads()
    try:
        spec = registry[app]()
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown application {app!r}; choose from: {known}") from None
    if htile is not None:
        spec = apply_htile(spec, htile)
    return spec


@lru_cache(maxsize=1024)
def _build_platform(
    platform: str,
    speed_profile: Optional[str],
    noise_model: Optional[str],
    fault_model: Optional[str],
):
    built = get_platform(platform)
    profile = parse_speed_profile(speed_profile)
    if profile is not None:
        built = built.with_speed_profile(profile)
    noise = parse_noise_model(noise_model)
    if noise is not None:
        built = built.with_noise(noise)
    faults = parse_fault_model(fault_model)
    if faults is not None:
        built = built.with_faults(faults)
    return built


@register_cache_clearer
def clear_point_build_cache() -> None:
    """Drop the memoised workload/platform value objects for campaign points."""
    _build_workload.cache_clear()
    _build_platform.cache_clear()


@dataclass(frozen=True)
class CampaignPoint:
    """One fully-determined configuration of a campaign matrix.

    The point is the unit of work *and* the unit of persistence: its
    :meth:`key` is a content hash over every field that influences the
    result, so a result store can recognise work it has already done across
    interrupted runs, re-runs and overlapping campaigns.

    >>> point = CampaignPoint(app="lu-classA", platform="cray-xt4",
    ...                       total_cores=16, htile=None,
    ...                       backend="analytic-fast")
    >>> len(point.key())
    16
    >>> point.request().total_cores
    16
    """

    app: str
    platform: str
    total_cores: int
    htile: Optional[float]
    backend: str
    noise_seed: Optional[int] = None
    compute_noise: float = 0.0
    placement: Optional[str] = None
    speed_profile: Optional[str] = None
    noise_model: Optional[str] = None
    fault_model: Optional[str] = None
    fault_seed: Optional[int] = None

    def key(self) -> str:
        """Stable content hash identifying this configuration in a store."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (the inverse of :meth:`from_dict`).

        The scenario fields (placement / speed profile / noise model) are
        omitted when unset, so homogeneous points hash exactly as they did
        before those axes existed and existing result stores stay valid.
        """
        record = {
            "app": self.app,
            "platform": self.platform,
            "total_cores": self.total_cores,
            "htile": self.htile,
            "backend": self.backend,
            "noise_seed": self.noise_seed,
            "compute_noise": self.compute_noise,
        }
        if self.placement is not None:
            record["placement"] = self.placement
        if self.speed_profile is not None:
            record["speed_profile"] = self.speed_profile
        if self.noise_model is not None:
            record["noise_model"] = self.noise_model
        if self.fault_model is not None:
            record["fault_model"] = self.fault_model
        if self.fault_seed is not None:
            record["fault_seed"] = self.fault_seed
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignPoint":
        return cls(
            app=str(data["app"]),
            platform=str(data["platform"]),
            total_cores=int(data["total_cores"]),
            htile=None if data.get("htile") is None else float(data["htile"]),
            backend=str(data["backend"]),
            noise_seed=None if data.get("noise_seed") is None else int(data["noise_seed"]),
            compute_noise=float(data.get("compute_noise", 0.0)),
            placement=None if data.get("placement") is None else str(data["placement"]),
            speed_profile=(
                None if data.get("speed_profile") is None else str(data["speed_profile"])
            ),
            noise_model=(
                None if data.get("noise_model") is None else str(data["noise_model"])
            ),
            fault_model=(
                None if data.get("fault_model") is None else str(data["fault_model"])
            ),
            fault_seed=(
                None if data.get("fault_seed") is None else int(data["fault_seed"])
            ),
        )

    def build_spec(self) -> WavefrontSpec:
        """The workload spec, with the point's tile height applied.

        Built values are memoised per ``(app, htile)`` - campaign matrices
        repeat the same workload across many core counts, and the shared
        frozen instance also maximises request dedup downstream.
        """
        return _build_workload(self.app, self.htile)

    def build_platform(self):
        """The platform, with the point's scenario fields applied.

        The speed profile, noise model and fault model become part of the
        platform description (see :mod:`repro.platforms.spec`), so every
        backend sees the same degraded machine.  Memoised per scenario
        tuple, like :meth:`build_spec`.
        """
        return _build_platform(
            self.platform, self.speed_profile, self.noise_model, self.fault_model
        )

    def shard(self, shards: int) -> int:
        """The stable :func:`shard_of` partition this point belongs to."""
        return shard_of(self.key(), shards)

    def request(self) -> PredictionRequest:
        """The :class:`PredictionRequest` this point evaluates."""
        platform = self.build_platform()
        return PredictionRequest(
            self.build_spec(),
            platform,
            total_cores=self.total_cores,
            core_mapping=parse_placement(self.placement, platform),
        )

    def backend_spec(self) -> BackendSpec:
        """What to pass as ``backend=`` to the prediction service.

        Plain registered names pass through; a noisy or faulty simulator
        point builds the configured
        :class:`~repro.backends.simulator.SimulatorBackend` so each seed
        gets its own deterministic jitter / failure streams.
        """
        if self.backend == "simulator" and (
            self.noise_seed is not None or self.fault_seed is not None
        ):
            return SimulatorBackend(
                compute_noise=self.compute_noise,
                noise_seed=self.noise_seed or 0,
                fault_seed=self.fault_seed or 0,
            )
        return self.backend

    def backend_group(self) -> tuple[str, Optional[int], Optional[int]]:
        """Grouping key for batching points through one ``predict_many`` call."""
        return (self.backend, self.noise_seed, self.fault_seed)


def _as_tuple(values: Any, coerce) -> tuple:
    if isinstance(values, (str, bytes)):
        raise TypeError(f"expected a sequence of values, got {values!r}")
    return tuple(coerce(value) for value in values)


def _normalise_scenario(value: Any) -> Optional[str]:
    """Scenario-axis values: ``None``/``"none"`` mean the plain machine."""
    if value is None:
        return None
    text = str(value).strip()
    return None if text.lower() in ("", "none", "default") else text


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative experiment campaign: named axes over the model's inputs.

    Every axis is a tuple of values; :meth:`points` takes their cartesian
    product in deterministic order (apps, then platforms, core counts, tile
    heights, backends, seeds).  ``htiles`` entries of ``None`` mean "the
    workload's default tile height"; ``noise_seeds`` only differentiate
    simulator points when ``compute_noise`` is non-zero (the analytic model
    is deterministic, so seeds would only duplicate work - they are
    normalised away).  ``baseline`` optionally names the backend that plays
    the paper's "measurement" role in reports, enabling the
    model-vs-measurement error columns of Tables 4-7.

    >>> spec = CampaignSpec(
    ...     name="mini-validation",
    ...     apps=("lu-classA",),
    ...     total_cores=(16, 64),
    ...     backends=("analytic-fast", "simulator"),
    ...     baseline="simulator",
    ... )
    >>> len(spec.points())
    4
    >>> spec.with_max_cores(16).total_cores
    (16,)
    """

    name: str
    apps: Tuple[str, ...] = ()
    total_cores: Tuple[int, ...] = ()
    description: str = ""
    platforms: Tuple[str, ...] = ("cray-xt4",)
    htiles: Tuple[Optional[float], ...] = (None,)
    backends: Tuple[str, ...] = ("analytic-fast",)
    noise_seeds: Tuple[Optional[int], ...] = (None,)
    compute_noise: float = 0.0
    baseline: Optional[str] = None
    placements: Tuple[Optional[str], ...] = (None,)
    speed_profiles: Tuple[Optional[str], ...] = (None,)
    noise_models: Tuple[Optional[str], ...] = (None,)
    fault_models: Tuple[Optional[str], ...] = (None,)
    fault_seeds: Tuple[Optional[int], ...] = (None,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "apps", _as_tuple(self.apps, str))
        object.__setattr__(self, "platforms", _as_tuple(self.platforms, str))
        object.__setattr__(self, "total_cores", _as_tuple(self.total_cores, int))
        object.__setattr__(
            self,
            "htiles",
            _as_tuple(self.htiles, lambda h: None if h is None else float(h)),
        )
        object.__setattr__(self, "backends", _as_tuple(self.backends, str))
        object.__setattr__(
            self,
            "noise_seeds",
            _as_tuple(self.noise_seeds, lambda s: None if s is None else int(s)),
        )
        object.__setattr__(
            self,
            "fault_seeds",
            _as_tuple(self.fault_seeds, lambda s: None if s is None else int(s)),
        )
        for axis in ("placements", "speed_profiles", "noise_models", "fault_models"):
            object.__setattr__(
                self,
                axis,
                _as_tuple(
                    getattr(self, axis), lambda v: _normalise_scenario(v)
                ),
            )
        if not self.name:
            raise ValueError("a campaign needs a non-empty name")
        for axis in (
            "apps",
            "platforms",
            "total_cores",
            "htiles",
            "backends",
            "noise_seeds",
            "placements",
            "speed_profiles",
            "noise_models",
            "fault_models",
            "fault_seeds",
        ):
            if not getattr(self, axis):
                raise ValueError(f"campaign axis {axis!r} has no values")
        if any(count < 1 for count in self.total_cores):
            raise ValueError("total_cores values must be positive")
        if self.compute_noise < 0:
            raise ValueError("compute_noise must be non-negative")
        if self.compute_noise > 0 and self.noise_models != (None,):
            # The legacy amplitude would shadow every noise_models value on
            # simulator points (WavefrontSimulator's precedence), producing
            # distinctly-labelled but numerically identical rows.
            raise ValueError(
                "compute_noise > 0 cannot be combined with a noise_models "
                "axis; express the legacy amplitude as "
                "noise_models=[\"sampled:<amplitude>\"] instead"
            )
        if self.baseline is not None and self.baseline not in self.backends:
            raise ValueError(
                f"baseline {self.baseline!r} is not one of the campaign's "
                f"backends {self.backends}"
            )

    # -- expansion -------------------------------------------------------------------

    def points(self) -> list[CampaignPoint]:
        """Expand the axes into the ordered, de-duplicated request list.

        Noise seeds differentiate only *stochastic* simulator points - the
        legacy ``compute_noise`` amplitude or a stochastic ``noise_models``
        entry (``sampled:...``); fault seeds likewise differentiate only
        simulator points whose fault model actually fails (finite MTBF).
        The analytic model and deterministic scenarios are seed-independent,
        so their seeds are normalised away rather than duplicating work.
        """
        stochastic_noise = {
            noise: (parsed := parse_noise_model(noise)) is not None
            and parsed.is_stochastic
            for noise in self.noise_models
        }
        failing_faults = {
            fault: (parsed := parse_fault_model(fault)) is not None and parsed.fails
            for fault in self.fault_models
        }
        seen: set[str] = set()
        expanded: list[CampaignPoint] = []
        for (
            app, platform, cores, htile, backend, seed,
            placement, profile, noise, fault, fault_seed,
        ) in itertools.product(
            self.apps,
            self.platforms,
            self.total_cores,
            self.htiles,
            self.backends,
            self.noise_seeds,
            self.placements,
            self.speed_profiles,
            self.noise_models,
            self.fault_models,
            self.fault_seeds,
        ):
            stochastic = backend == "simulator" and (
                self.compute_noise > 0.0 or stochastic_noise[noise]
            )
            faulting = backend == "simulator" and failing_faults[fault]
            point = CampaignPoint(
                app=app,
                platform=platform,
                total_cores=cores,
                htile=htile,
                backend=backend,
                noise_seed=seed if stochastic else None,
                compute_noise=self.compute_noise if stochastic else 0.0,
                placement=placement,
                speed_profile=profile,
                noise_model=noise,
                fault_model=fault,
                fault_seed=fault_seed if faulting else None,
            )
            key = point.key()
            if key not in seen:
                seen.add(key)
                expanded.append(point)
        return expanded

    def __len__(self) -> int:
        return len(self.points())

    # -- serialisation ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (the inverse of :meth:`from_dict`).

        The scenario axes are included only when non-trivial, keeping the
        stored spec header byte-compatible for homogeneous campaigns.
        """
        record = {
            "name": self.name,
            "description": self.description,
            "apps": list(self.apps),
            "platforms": list(self.platforms),
            "total_cores": list(self.total_cores),
            "htiles": list(self.htiles),
            "backends": list(self.backends),
            "noise_seeds": list(self.noise_seeds),
            "compute_noise": self.compute_noise,
            "baseline": self.baseline,
        }
        if self.placements != (None,):
            record["placements"] = list(self.placements)
        if self.speed_profiles != (None,):
            record["speed_profiles"] = list(self.speed_profiles)
        if self.noise_models != (None,):
            record["noise_models"] = list(self.noise_models)
        if self.fault_models != (None,):
            record["fault_models"] = list(self.fault_models)
        if self.fault_seeds != (None,):
            record["fault_seeds"] = list(self.fault_seeds)
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from a plain dict (e.g. parsed campaign JSON).

        Only ``name``, ``apps`` and ``total_cores`` are required; every other
        field falls back to the dataclass default.  Unknown keys raise, so
        typos in campaign files fail loudly.
        """
        known = {
            "name",
            "description",
            "apps",
            "platforms",
            "total_cores",
            "htiles",
            "backends",
            "noise_seeds",
            "compute_noise",
            "baseline",
            "placements",
            "speed_profiles",
            "noise_models",
            "fault_models",
            "fault_seeds",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown campaign field(s) {sorted(unknown)}; known fields: "
                f"{sorted(known)}"
            )
        kwargs = {key: data[key] for key in known & set(data)}
        return cls(**kwargs)

    # -- derived campaigns -----------------------------------------------------------

    def with_max_cores(self, max_cores: int) -> "CampaignSpec":
        """A reduced-scale copy keeping only core counts ``<= max_cores``.

        Used by CI smoke runs and quick local iterations; if every axis value
        exceeds the cap the smallest one is kept so the campaign never
        becomes empty.
        """
        kept = tuple(count for count in self.total_cores if count <= max_cores)
        if not kept:
            kept = (min(self.total_cores),)
        return replace(self, total_cores=kept)


def load_campaign_file(path: Union[str, Path]) -> CampaignSpec:
    """Load a :class:`CampaignSpec` from a JSON file.

    The file holds one JSON object with the :meth:`CampaignSpec.from_dict`
    fields - see ``docs/campaigns.md`` for the schema and
    ``src/repro/campaigns/data/`` for the built-in examples.
    """
    text = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"campaign file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError(f"campaign file {path} must hold a JSON object")
    return CampaignSpec.from_dict(data)
