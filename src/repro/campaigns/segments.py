"""Sharded segment-log storage: the on-disk layer under :class:`ResultStore`.

A v2 store is a *directory* of fixed-fanout segment logs instead of one
monolithic JSON-lines file::

    <store>/
        store.json        # layout metadata: {"version": 2, "segments": 16}
        header.json       # campaign spec (atomic replace; owned by ResultStore)
        seg-0.jsonl       # record lines, routed by content-hash prefix
        ...
        seg-f.jsonl
        seg-0.idx         # index sidecar: one "<key> <offset> <length>" per record
        ...
        quarantine.jsonl  # corrupt lines salvaged out of the data path
        shards/           # per-worker scratch stores during sharded runs

Records are routed to a segment by the first hex digit of their content-hash
key, so a million-point store spreads across 16 independent append-only logs.
Each segment carries a plain-text **index sidecar** mapping keys to byte
ranges; opening a store parses only the sidecars (O(index)), never the JSON
record bodies, and individual records are fetched by ``seek`` + single-line
parse on demand.

Durability protocol (per batch, per segment):

1. take an exclusive advisory lock on the segment file (``flock``);
2. append every record line in one write to the ``O_APPEND`` handle, then
   ``flush`` + ``fsync`` - one fsync per *batch*, not per record;
3. append the matching sidecar entries, ``flush`` + ``fsync``, release.

Data is always synced before its index entries, so a sidecar never
references bytes that might not survive a crash.  The converse crash (data
synced, index lost) is repaired on open: any segment bytes past the last
indexed offset are scanned, intact records are re-indexed, a torn final
line (the signature of a crash mid-append) is ignored, and corrupt interior
lines are quarantined - or, with ``strict=True``, rejected loudly.

The advisory lock makes concurrent appends from multiple processes safe:
writers serialise per segment (different segments proceed in parallel), and
because each process appends whole lines under the lock there are no
interleaved or torn records.  Two processes racing the *same* key simply
append twice; the loader keeps the last occurrence (idempotent last-wins).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence

try:  # pragma: no cover - fcntl is always present on the POSIX CI targets
    import fcntl
except ImportError:  # pragma: no cover - Windows: advisory locks degrade to none
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "IndexEntry",
    "SegmentCorruption",
    "SegmentLog",
    "META_NAME",
    "QUARANTINE_NAME",
    "SEGMENT_NAMES",
    "STORE_VERSION",
]

#: Store layout version recorded in ``store.json``.
STORE_VERSION = 2

#: Fixed segment fanout: one segment per leading hex digit of the key.
SEGMENT_NAMES = tuple("0123456789abcdef")

META_NAME = "store.json"
QUARANTINE_NAME = "quarantine.jsonl"

_HEX_DIGITS = frozenset("0123456789abcdef")


class SegmentCorruption(ValueError):
    """A segment (or legacy store file) holds an unparsable interior line."""


@dataclass(frozen=True)
class IndexEntry:
    """One sidecar row: where a record's line lives inside its segment."""

    key: str
    segment: str
    offset: int
    length: int

    def sidecar_line(self) -> str:
        return f"{self.key} {self.offset} {self.length}\n"


def segment_of(key: str) -> str:
    """The segment a key routes to: its first hex digit.

    Keys are normally 16-hex content hashes (:meth:`CampaignPoint.key`);
    arbitrary keys are hashed so every key still routes deterministically.

    >>> segment_of("ab12cd34ef56ab78")
    'a'
    >>> segment_of("not-a-hash") in SEGMENT_NAMES
    True
    """
    first = key[:1].lower()
    if first in _HEX_DIGITS:
        return first
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[0]


class SegmentLog:
    """The segment files, sidecars and quarantine of one store directory.

    This class owns byte-level layout and crash repair; record semantics
    (keys, headers, campaign specs) live in
    :class:`repro.campaigns.store.ResultStore`.
    """

    def __init__(self, root: Path, *, strict: bool = False):
        self.root = Path(root)
        self.strict = strict
        self.quarantined = 0
        self._read_handles: dict[str, Any] = {}

    # -- paths -----------------------------------------------------------------------

    def segment_path(self, name: str) -> Path:
        return self.root / f"seg-{name}.jsonl"

    def sidecar_path(self, name: str) -> Path:
        return self.root / f"seg-{name}.idx"

    @property
    def meta_path(self) -> Path:
        return self.root / META_NAME

    @property
    def quarantine_path(self) -> Path:
        return self.root / QUARANTINE_NAME

    def ensure_layout(self) -> None:
        """Create the directory and the layout-metadata marker."""
        self.root.mkdir(parents=True, exist_ok=True)
        if not self.meta_path.exists():
            meta = {"version": STORE_VERSION, "segments": len(SEGMENT_NAMES)}
            self.meta_path.write_text(
                json.dumps(meta, sort_keys=True) + "\n", encoding="utf-8"
            )

    # -- loading ---------------------------------------------------------------------

    def load(self) -> dict[str, IndexEntry]:
        """Parse the sidecars into a key -> entry map (last-wins per key).

        Only the sidecars are read; record bodies stay on disk.  Segments
        with un-indexed tail bytes (a crash between the data fsync and the
        index append, or a writer killed mid-batch) are repaired by
        scanning just that tail and appending the recovered entries to the
        sidecar; a segment with no sidecar at all is fully rescanned.
        """
        index: dict[str, IndexEntry] = {}
        for name in SEGMENT_NAMES:
            for entry in self._load_segment(name):
                index[entry.key] = entry
        return index

    def _load_segment(self, name: str) -> list[IndexEntry]:
        seg_path = self.segment_path(name)
        if not seg_path.exists():
            return []
        seg_size = seg_path.stat().st_size
        entries: list[IndexEntry] = []
        indexed_end = 0
        idx_path = self.sidecar_path(name)
        if idx_path.exists():
            for raw in idx_path.read_text(encoding="utf-8").splitlines():
                parts = raw.split()
                if len(parts) != 3:
                    continue  # torn sidecar line: the tail scan re-derives it
                try:
                    offset, length = int(parts[1]), int(parts[2])
                except ValueError:
                    continue
                if offset + length > seg_size:
                    continue  # references bytes that never hit the disk
                entries.append(IndexEntry(parts[0], name, offset, length))
                indexed_end = max(indexed_end, offset + length)
        if entries and not self._ends_on_newline(seg_path, entries[-1]):
            # The final sidecar row itself may be torn in a way that still
            # parses (a truncated length).  A valid entry always ends at a
            # line boundary; re-derive anything that does not.
            dropped = entries.pop()
            indexed_end = max((e.offset + e.length for e in entries), default=0)
            indexed_end = min(indexed_end, dropped.offset)
        if indexed_end < seg_size:
            recovered = self._scan(seg_path, start=indexed_end)
            if recovered:
                with idx_path.open("a", encoding="utf-8") as idx:
                    idx.writelines(entry.sidecar_line() for entry in recovered)
                    idx.flush()
                    os.fsync(idx.fileno())
                entries.extend(recovered)
        return entries

    def _ends_on_newline(self, seg_path: Path, entry: IndexEntry) -> bool:
        if entry.length < 1:
            return False
        handle = self._reader(entry.segment)
        handle.seek(entry.offset + entry.length - 1)
        return handle.read(1) == b"\n"

    def _scan(self, seg_path: Path, start: int = 0) -> list[IndexEntry]:
        """Scan ``seg_path`` from ``start``, salvaging every intact record.

        Complete lines that fail to parse are quarantined (``strict=True``
        raises instead); an unterminated final line - the crash-mid-append
        signature - is ignored silently.
        """
        name = seg_path.stem.removeprefix("seg-")
        with seg_path.open("rb") as handle:
            handle.seek(start)
            blob = handle.read()
        entries: list[IndexEntry] = []
        offset = start
        for line in blob.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn final line: everything before it is intact
            stripped = line.strip()
            if stripped:
                try:
                    record = json.loads(stripped)
                except json.JSONDecodeError:
                    self._quarantine(seg_path.name, offset, line)
                    offset += len(line)
                    continue
                key = record.get("key") if isinstance(record, dict) else None
                if isinstance(key, str):
                    entries.append(IndexEntry(key, name, offset, len(line)))
                else:
                    self._quarantine(seg_path.name, offset, line)
            offset += len(line)
        return entries

    def _quarantine(self, source: str, offset: int, line: bytes) -> None:
        if self.strict:
            raise SegmentCorruption(
                f"store {self.root} is corrupt: unparsable line in {source} "
                f"at byte offset {offset}"
            )
        wrapper = {
            "source": source,
            "offset": offset,
            "line": line.decode("utf-8", errors="replace").rstrip("\n"),
        }
        with self.quarantine_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(wrapper, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.quarantined += 1

    # -- reading ---------------------------------------------------------------------

    def _reader(self, name: str):
        handle = self._read_handles.get(name)
        if handle is None or handle.closed:
            handle = self.segment_path(name).open("rb")
            self._read_handles[name] = handle
        return handle

    def read(self, entry: IndexEntry) -> dict[str, Any]:
        """Fetch and parse exactly one record line."""
        handle = self._reader(entry.segment)
        handle.seek(entry.offset)
        raw = handle.read(entry.length)
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SegmentCorruption(
                f"store {self.root}: indexed record {entry.key!r} in "
                f"seg-{entry.segment}.jsonl is unreadable ({exc}); "
                "run compact() to rebuild the segment"
            ) from exc
        return record

    def close(self) -> None:
        for handle in self._read_handles.values():
            if not handle.closed:
                handle.close()
        self._read_handles.clear()

    # -- writing ---------------------------------------------------------------------

    def append(self, items: Sequence[tuple[str, bytes]]) -> list[IndexEntry]:
        """Group-commit ``(key, line)`` pairs: one lock + fsync per segment.

        ``line`` must be a complete JSON document ending in a newline.  The
        entries are returned in input order so callers can update their
        in-memory index without re-reading anything.
        """
        self.ensure_layout()
        by_segment: dict[str, list[tuple[str, bytes]]] = {}
        for key, line in items:
            by_segment.setdefault(segment_of(key), []).append((key, line))
        placed: dict[str, IndexEntry] = {}
        # Locks are taken in sorted segment order, so concurrent put_many
        # calls can never deadlock against each other.
        for name in sorted(by_segment):
            batch = by_segment[name]
            with self.segment_path(name).open("ab") as seg:
                self._lock(seg)
                try:
                    base = os.fstat(seg.fileno()).st_size
                    blob = bytearray()
                    entries = []
                    for key, line in batch:
                        entries.append(
                            IndexEntry(key, name, base + len(blob), len(line))
                        )
                        blob += line
                    seg.write(bytes(blob))
                    seg.flush()
                    os.fsync(seg.fileno())
                    with self.sidecar_path(name).open("ab") as idx:
                        idx.write(
                            "".join(e.sidecar_line() for e in entries).encode("ascii")
                        )
                        idx.flush()
                        os.fsync(idx.fileno())
                finally:
                    self._unlock(seg)
                for entry in entries:
                    placed[entry.key] = entry
        return [placed[key] for key, _ in items]

    @staticmethod
    def _lock(handle) -> None:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)

    @staticmethod
    def _unlock(handle) -> None:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- maintenance -----------------------------------------------------------------

    def compact(self, live: Sequence[IndexEntry]) -> dict[str, Any]:
        """Rewrite every segment keeping only the ``live`` entries.

        Superseded duplicates (an older line for a re-appended key) and
        quarantined garbage bytes are dropped; the quarantine file itself
        is removed once the garbage no longer exists in any segment.  Each
        segment is rebuilt to a temporary file and atomically swapped in;
        the sidecar is removed *before* the swap and rewritten after, so a
        crash mid-compaction at worst costs a one-off full rescan of that
        segment on the next open, never data.

        Returns the updated index plus ``{"segments_rewritten", "records",
        "bytes_reclaimed"}`` statistics.
        """
        self.close()
        by_segment: dict[str, list[IndexEntry]] = {}
        for entry in live:
            by_segment.setdefault(entry.segment, []).append(entry)
        rewritten = 0
        reclaimed = 0
        new_index: dict[str, IndexEntry] = {}
        for name in SEGMENT_NAMES:
            seg_path = self.segment_path(name)
            if not seg_path.exists():
                continue
            old_size = seg_path.stat().st_size
            entries = sorted(by_segment.get(name, []), key=lambda e: e.offset)
            lines: list[tuple[str, bytes]] = []
            with seg_path.open("rb") as handle:
                for entry in entries:
                    handle.seek(entry.offset)
                    lines.append((entry.key, handle.read(entry.length)))
            tmp_path = seg_path.with_suffix(".jsonl.compacting")
            with tmp_path.open("wb") as tmp:
                offset = 0
                for key, raw in lines:
                    new_index[key] = IndexEntry(key, name, offset, len(raw))
                    tmp.write(raw)
                    offset += len(raw)
                tmp.flush()
                os.fsync(tmp.fileno())
            idx_path = self.sidecar_path(name)
            if idx_path.exists():
                idx_path.unlink()
            os.replace(tmp_path, seg_path)
            with idx_path.open("w", encoding="utf-8") as idx:
                idx.writelines(
                    new_index[key].sidecar_line() for key, _ in lines
                )
                idx.flush()
                os.fsync(idx.fileno())
            rewritten += 1
            reclaimed += old_size - seg_path.stat().st_size
        if self.quarantine_path.exists():
            self.quarantine_path.unlink()
        self.quarantined = 0
        stats = {
            "segments_rewritten": rewritten,
            "records": len(new_index),
            "bytes_reclaimed": reclaimed,
        }
        return {"index": new_index, "stats": stats}

    def remove(self) -> bool:
        """Delete every store-owned file and the directory itself.

        Refuses to touch a directory that does not look like a store (no
        metadata marker and no segment files) - ``clean()`` must never
        become an accidental ``rm -rf``.
        """
        self.close()
        if not self.root.exists():
            return False
        owned = self._owned_files()
        if owned is None:
            raise ValueError(
                f"refusing to clean {self.root}: directory does not look "
                "like a result store (no store.json marker or seg-*.jsonl)"
            )
        for path in owned:
            path.unlink()
        shards = self.root / "shards"
        if shards.exists():
            for scratch in sorted(shards.iterdir()):
                SegmentLog(scratch).remove()
            shards.rmdir()
        remaining = list(self.root.iterdir())
        if remaining:  # pragma: no cover - foreign files are left in place
            return True
        self.root.rmdir()
        return True

    def _owned_files(self) -> Optional[list[Path]]:
        has_marker = self.meta_path.exists()
        owned = []
        for path in sorted(self.root.iterdir()):
            if path.name in (META_NAME, QUARANTINE_NAME, "header.json"):
                owned.append(path)
            elif path.name.startswith("seg-") and path.suffix in (".jsonl", ".idx"):
                owned.append(path)
                has_marker = True
            elif path.name.endswith((".compacting", ".migrated")):
                owned.append(path)
            elif path.name == "shards" and path.is_dir():
                continue
            else:
                return None
        if not has_marker and owned:
            return None
        return owned

    def iter_scratch_roots(self) -> Iterator[Path]:
        """The shard scratch stores currently parked under this store."""
        shards = self.root / "shards"
        if shards.exists():
            for path in sorted(shards.iterdir()):
                if path.is_dir():
                    yield path
