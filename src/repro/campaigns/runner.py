"""Campaign execution: expand, diff against the store, compute the delta.

:class:`CampaignRunner` is deliberately thin: the heavy lifting - request
deduplication, per-backend caches, pool fan-out - already lives in
:func:`repro.backends.service.predict_many`.  The runner adds the campaign
semantics on top:

1. expand the :class:`~repro.campaigns.spec.CampaignSpec` into points;
2. drop every point whose content-hash key is already in the
   :class:`~repro.campaigns.store.ResultStore` (this is what makes re-runs
   free and interrupted campaigns resumable);
3. batch the remaining points through ``predict_many`` - one call per
   backend group, so a mixed model+simulator campaign still gets batch
   deduplication within each engine;
4. append each result to the store as soon as its batch completes.

>>> import tempfile, os
>>> from repro.campaigns.spec import CampaignSpec
>>> spec = CampaignSpec(name="demo", apps=("lu-classA",), total_cores=(4, 16))
>>> store_path = os.path.join(tempfile.mkdtemp(), "demo.jsonl")
>>> summary = run_campaign(spec, store=store_path)
>>> (summary.total_points, summary.computed, summary.cached)
(2, 2, 0)
>>> run_campaign(spec, store=store_path).computed   # resumed: all cached
0
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro.backends.base import BackendResult
from repro.backends.service import predict_many
from repro.campaigns.spec import CampaignPoint, CampaignSpec
from repro.campaigns.store import ResultStore, as_store, default_store_path

__all__ = ["CampaignRunSummary", "CampaignRunner", "result_record", "run_campaign"]


def result_record(point: CampaignPoint, result: BackendResult) -> dict[str, Any]:
    """The JSON-serialisable store record for one evaluated point.

    Carries the point definition plus every quantity the reporting layer
    needs (per-iteration times, fractions and the run-length aggregates), so
    reports can be regenerated from the store alone.
    """
    return {
        "point": point.to_dict(),
        "result": {
            "backend": result.backend,
            "application": result.spec.name,
            "platform": result.platform.name,
            "processors": result.grid.total_processors,
            "grid": f"{result.grid.n}x{result.grid.m}",
            "cores_per_node": result.core_mapping.cores_per_node,
            "time_per_iteration_us": result.time_per_iteration_us,
            "computation_per_iteration_us": result.computation_per_iteration_us,
            "pipeline_fill_per_iteration_us": result.pipeline_fill_per_iteration_us,
            "time_per_time_step_s": result.time_per_time_step_s,
            "total_time_s": result.total_time_s,
            "total_time_days": result.total_time_days,
            "computation_fraction": result.computation_fraction,
            "communication_fraction": result.communication_fraction,
            "pipeline_fill_fraction": result.pipeline_fill_fraction,
        },
    }


@dataclass(frozen=True)
class CampaignRunSummary:
    """What one :meth:`CampaignRunner.run` call did.

    ``computed`` counts points actually evaluated this run; ``cached``
    counts points satisfied from the store.  ``computed == 0`` on a re-run
    is the resumability contract the tests pin down.
    """

    campaign: str
    total_points: int
    computed: int
    cached: int
    store_path: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "campaign": self.campaign,
            "total_points": self.total_points,
            "computed": self.computed,
            "cached": self.cached,
            "store_path": self.store_path,
        }


class CampaignRunner:
    """Execute a :class:`CampaignSpec` against a persistent result store.

    ``workers``/``executor`` are passed straight to
    :func:`repro.backends.service.predict_many` for pool fan-out of each
    backend batch.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[Union[str, Path, ResultStore]] = None,
        *,
        workers: Optional[int] = None,
        executor: str = "thread",
    ):
        self.spec = spec
        self.store = as_store(store if store is not None else default_store_path(spec.name))
        self.workers = workers
        self.executor = executor

    def pending(self) -> list[CampaignPoint]:
        """The points of the campaign not yet present in the store."""
        return [point for point in self.spec.points() if point.key() not in self.store]

    def run(self) -> CampaignRunSummary:
        """Compute the missing points, persisting each batch as it lands."""
        self.store.set_spec(self.spec.to_dict())
        points = self.spec.points()
        pending = [point for point in points if point.key() not in self.store]

        # Build every request up front so an invalid point (unknown app or
        # platform name, unrealisable Sweep3D Htile, ...) fails the run
        # before any backend computation starts.
        requests = [point.request() for point in pending]

        # One predict_many call per backend group keeps each engine's batch
        # deduplication and cache locality intact.
        groups: dict[tuple[str, Optional[int]], list[int]] = {}
        for index, point in enumerate(pending):
            groups.setdefault(point.backend_group(), []).append(index)

        for indices in groups.values():
            backend = pending[indices[0]].backend_spec()
            results = predict_many(
                [requests[index] for index in indices],
                backend=backend,
                workers=self.workers,
                executor=self.executor,
            )
            for index, result in zip(indices, results):
                self.store.put(pending[index].key(), result_record(pending[index], result))

        return CampaignRunSummary(
            campaign=self.spec.name,
            total_points=len(points),
            computed=len(pending),
            cached=len(points) - len(pending),
            store_path=str(self.store.path),
        )


def run_campaign(
    spec: CampaignSpec,
    *,
    store: Optional[Union[str, Path, ResultStore]] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> CampaignRunSummary:
    """Convenience wrapper: build a :class:`CampaignRunner` and run it.

    ``store`` defaults to ``.repro-cache/<campaign-name>.jsonl``.
    """
    return CampaignRunner(spec, store, workers=workers, executor=executor).run()
