"""Campaign execution: expand, diff against the store, compute the delta.

:class:`CampaignRunner` is deliberately thin: the heavy lifting - request
deduplication, per-backend caches, pool fan-out - already lives in
:func:`repro.backends.service.predict_many`.  The runner adds the campaign
semantics on top:

1. expand the :class:`~repro.campaigns.spec.CampaignSpec` into points;
2. drop every point whose content-hash key is already in the
   :class:`~repro.campaigns.store.ResultStore` (this is what makes re-runs
   free and interrupted campaigns resumable);
3. batch the remaining points through ``predict_many`` - one call per
   backend group, chunked so results land on disk incrementally - and
   group-commit each chunk via :meth:`ResultStore.put_many` (one fsync per
   touched segment per chunk, not one per record);
4. with ``shards=K``, partition the pending points across ``K`` worker
   *processes* by stable content-hash (:func:`repro.campaigns.spec.shard_of`).
   Each worker writes its own scratch store under ``<store>/shards/``; the
   parent merges the scratch segments into the main store as workers finish.
   A killed fan-out run leaves its scratch intact - ``run(resume=True)``
   (CLI: ``--resume``) salvages every committed scratch record before
   computing only the still-missing delta.

>>> import tempfile, os
>>> from repro.campaigns.spec import CampaignSpec
>>> spec = CampaignSpec(name="demo", apps=("lu-classA",), total_cores=(4, 16))
>>> store_path = os.path.join(tempfile.mkdtemp(), "demo.store")
>>> summary = run_campaign(spec, store=store_path)
>>> (summary.total_points, summary.computed, summary.cached)
(2, 2, 0)
>>> run_campaign(spec, store=store_path).computed   # resumed: all cached
0
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.backends.base import BackendResult
from repro.backends.service import predict_many
from repro.campaigns.spec import CampaignPoint, CampaignSpec, partition_points
from repro.campaigns.store import ResultStore, as_store, default_store_path

__all__ = [
    "CampaignRunSummary",
    "CampaignRunner",
    "DEFAULT_BATCH_SIZE",
    "result_record",
    "run_campaign",
]

#: How many points each ``predict_many`` -> ``put_many`` chunk carries.  One
#: group commit (fsync per touched segment) per chunk; a crash loses at most
#: the chunk in flight.
DEFAULT_BATCH_SIZE = 1024


def result_record(point: CampaignPoint, result: BackendResult) -> dict[str, Any]:
    """The JSON-serialisable store record for one evaluated point.

    Carries the point definition plus every quantity the reporting layer
    needs (per-iteration times, fractions and the run-length aggregates), so
    reports can be regenerated from the store alone.
    """
    return {
        "point": point.to_dict(),
        "result": {
            "backend": result.backend,
            "application": result.spec.name,
            "platform": result.platform.name,
            "processors": result.grid.total_processors,
            "grid": f"{result.grid.n}x{result.grid.m}",
            "cores_per_node": result.core_mapping.cores_per_node,
            "time_per_iteration_us": result.time_per_iteration_us,
            "computation_per_iteration_us": result.computation_per_iteration_us,
            "pipeline_fill_per_iteration_us": result.pipeline_fill_per_iteration_us,
            "time_per_time_step_s": result.time_per_time_step_s,
            "total_time_s": result.total_time_s,
            "total_time_days": result.total_time_days,
            "computation_fraction": result.computation_fraction,
            "communication_fraction": result.communication_fraction,
            "pipeline_fill_fraction": result.pipeline_fill_fraction,
        },
    }


@dataclass(frozen=True)
class CampaignRunSummary:
    """What one :meth:`CampaignRunner.run` call did.

    ``computed`` counts points actually evaluated this run; ``cached``
    counts points satisfied from the store - including any ``salvaged``
    from interrupted shard workers' scratch stores when resuming.
    ``computed == 0`` on a re-run is the resumability contract the tests
    pin down.
    """

    campaign: str
    total_points: int
    computed: int
    cached: int
    store_path: str
    shards: int = 1
    salvaged: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "campaign": self.campaign,
            "total_points": self.total_points,
            "computed": self.computed,
            "cached": self.cached,
            "store_path": self.store_path,
            "shards": self.shards,
            "salvaged": self.salvaged,
        }


def _compute_into(
    store: ResultStore,
    points: Sequence[CampaignPoint],
    *,
    workers: Optional[int],
    executor: str,
    batch_size: int,
) -> None:
    """Evaluate ``points`` and persist them into ``store``, chunk by chunk.

    Shared by the in-process path and every shard worker.  All requests are
    built up front so an invalid point (unknown app or platform name,
    unrealisable Sweep3D Htile, ...) fails the run before any backend
    computation starts; value objects are memoised per configuration, so
    this stays cheap even at large point counts.
    """
    keys = [point.key() for point in points]
    requests = [point.request() for point in points]

    # One predict_many call per backend group keeps each engine's batch
    # deduplication and cache locality intact.
    groups: dict[tuple, list[int]] = {}
    for index, point in enumerate(points):
        groups.setdefault(point.backend_group(), []).append(index)

    for indices in groups.values():
        backend = points[indices[0]].backend_spec()
        for start in range(0, len(indices), batch_size):
            chunk = indices[start : start + batch_size]
            results = predict_many(
                [requests[index] for index in chunk],
                backend=backend,
                workers=workers,
                executor=executor,
            )
            store.put_many(
                (keys[index], result_record(points[index], result))
                for index, result in zip(chunk, results)
            )


def _shard_worker(
    scratch_path: str,
    point_dicts: list[dict[str, Any]],
    workers: Optional[int],
    executor: str,
    batch_size: int,
) -> None:
    """Entry point of one ``--shards`` worker process.

    Evaluates its stable partition of the pending points into a private
    scratch store.  Records already present in the scratch (left by a
    previous, killed run of the same shard) are skipped by the store's own
    idempotence, so a re-spawned worker computes only its own delta.
    """
    scratch = ResultStore(scratch_path)
    points = [CampaignPoint.from_dict(data) for data in point_dicts]
    pending = [point for point in points if point.key() not in scratch]
    _compute_into(
        scratch, pending, workers=workers, executor=executor, batch_size=batch_size
    )
    scratch.close()


class CampaignRunner:
    """Execute a :class:`CampaignSpec` against a persistent result store.

    ``workers``/``executor`` are passed straight to
    :func:`repro.backends.service.predict_many` for pool fan-out of each
    backend batch; ``shards`` additionally partitions the pending points
    across that many worker *processes*, each with its own scratch store
    merged on completion.  ``batch_size`` bounds how many results ride in
    one group commit.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[Union[str, Path, ResultStore]] = None,
        *,
        workers: Optional[int] = None,
        executor: str = "thread",
        shards: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        if shards is not None and shards < 1:
            raise ValueError("shards must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.spec = spec
        self.store = as_store(store if store is not None else default_store_path(spec.name))
        self.workers = workers
        self.executor = executor
        self.shards = shards or 1
        self.batch_size = batch_size

    def pending(self) -> list[CampaignPoint]:
        """The points of the campaign not yet present in the store."""
        return [point for point in self.spec.points() if point.key() not in self.store]

    def run(self, *, resume: bool = False) -> CampaignRunSummary:
        """Compute the missing points, persisting each batch as it lands.

        With ``resume=True``, scratch stores left behind by a killed
        sharded run are merged into the main store first, so their already-
        computed records count as cached and only the true delta is
        evaluated.  Without it, leftover scratch is discarded and the
        corresponding points are recomputed (a deliberate fresh start).
        """
        self.store.set_spec(self.spec.to_dict())
        salvaged = self._reconcile_scratch(resume)
        points = self.spec.points()
        pending = [point for point in points if point.key() not in self.store]

        if pending and self.shards > 1:
            self._run_sharded(pending)
        elif pending:
            _compute_into(
                self.store,
                pending,
                workers=self.workers,
                executor=self.executor,
                batch_size=self.batch_size,
            )

        return CampaignRunSummary(
            campaign=self.spec.name,
            total_points=len(points),
            computed=len(pending),
            cached=len(points) - len(pending),
            store_path=str(self.store.path),
            shards=self.shards,
            salvaged=salvaged,
        )

    # -- sharded fan-out -------------------------------------------------------------

    def _reconcile_scratch(self, resume: bool) -> int:
        """Deal with scratch stores parked by an interrupted sharded run."""
        salvaged = 0
        for scratch_path in self.store.scratch_stores():
            if resume:
                salvaged += self.store.merge_from(scratch_path)
            ResultStore(scratch_path).clean()
        root = self.store.scratch_root()
        if root.is_dir() and not any(root.iterdir()):
            root.rmdir()
        return salvaged

    def _scratch_path(self, shard: int) -> Path:
        return self.store.scratch_root() / f"shard-{shard}.store"

    def _run_sharded(self, pending: Sequence[CampaignPoint]) -> None:
        # Validate every request in the parent before any worker spawns, so
        # a bad point fails the run with zero scratch left behind.
        for point in pending:
            point.request()
        partitions = partition_points(pending, self.shards)
        context = multiprocessing.get_context()
        processes: list[tuple[int, Any]] = []
        for shard, partition in enumerate(partitions):
            if not partition:
                continue
            process = context.Process(
                target=_shard_worker,
                args=(
                    str(self._scratch_path(shard)),
                    [point.to_dict() for point in partition],
                    self.workers,
                    self.executor,
                    self.batch_size,
                ),
                name=f"campaign-shard-{shard}",
            )
            process.start()
            processes.append((shard, process))
        failures = []
        for shard, process in processes:
            process.join()
            if process.exitcode != 0:
                failures.append((shard, process.exitcode))
        if failures:
            detail = ", ".join(f"shard {s} exit code {c}" for s, c in failures)
            raise RuntimeError(
                f"{len(failures)} shard worker(s) failed ({detail}); completed "
                f"results are preserved under {self.store.scratch_root()} - "
                "re-run with resume=True (--resume) to salvage them"
            )
        for shard, _process in processes:
            scratch_path = self._scratch_path(shard)
            self.store.merge_from(scratch_path)
            ResultStore(scratch_path).clean()
        root = self.store.scratch_root()
        if root.is_dir() and not any(root.iterdir()):
            root.rmdir()


def run_campaign(
    spec: CampaignSpec,
    *,
    store: Optional[Union[str, Path, ResultStore]] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
    shards: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    resume: bool = False,
) -> CampaignRunSummary:
    """Convenience wrapper: build a :class:`CampaignRunner` and run it.

    ``store`` defaults to :func:`repro.campaigns.store.default_store_path`
    (``$REPRO_CACHE_DIR`` or ``<project root>/.repro-cache``).
    """
    runner = CampaignRunner(
        spec,
        store,
        workers=workers,
        executor=executor,
        shards=shards,
        batch_size=batch_size,
    )
    return runner.run(resume=resume)
