"""Campaign reporting: paper-style tables and figure data from a result store.

The report layer never runs a backend - it renders whatever the
:class:`~repro.campaigns.store.ResultStore` holds, which is what makes a
report reproducible from the store file alone (and byte-identical however
many interruptions the producing run suffered).  Three views mirror the
paper's presentation:

* **results table** - every stored point with its headline numbers;
* **model-vs-measurement** - when the campaign names a ``baseline`` backend
  (the simulator in the built-ins), candidate backends are diffed against it
  per configuration, reproducing the error columns of Tables 4-7; the error
  arithmetic reuses :class:`repro.validation.compare.ValidationResult`, the
  same type :func:`repro.validation.compare.diff_backends` produces;
* **figure data** - strong-scaling curves (Figure 6) for every
  (application, platform, backend, Htile) group spanning >= 2 core counts,
  and Htile sweeps (Figure 5) for every group spanning >= 2 tile heights;
* **design optima** - per (application, backend, core count) group with at
  least two stored design choices, the configuration minimising execution
  time (the ``optimization-study`` campaign's conclusion table; see
  :mod:`repro.optimize` for searching such spaces without exhaustion).

:func:`campaign_report` renders Markdown; :func:`write_report` additionally
emits the CSV data files next to it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore, as_store
from repro.util.tables import Table
from repro.validation.compare import ValidationResult, ValidationSummary

__all__ = ["campaign_report", "write_report"]


#: The scenario fields a point may carry (heterogeneity campaigns).
_SCENARIO_FIELDS = ("placement", "speed_profile", "noise_model")


def _scenario_cell(point: dict[str, Any]) -> str:
    """Compact ``field=value`` rendering of a point's scenario ("-" if none)."""
    parts = [
        f"{name}={point[name]}"
        for name in _SCENARIO_FIELDS
        if point.get(name) is not None
    ]
    return " ".join(parts) if parts else "-"


def _has_scenarios(records: list[dict[str, Any]]) -> bool:
    return any(
        record["point"].get(name) is not None
        for record in records
        for name in _SCENARIO_FIELDS
    )


def _sort_key(record: dict[str, Any]) -> tuple:
    point = record["point"]
    return (
        point["app"],
        point["platform"],
        point["total_cores"],
        -1.0 if point.get("htile") is None else float(point["htile"]),
        _scenario_cell(point),
        point["backend"],
        -1 if point.get("noise_seed") is None else int(point["noise_seed"]),
    )


def _sorted_records(store: ResultStore) -> list[dict[str, Any]]:
    return sorted(store.records(), key=_sort_key)


def _spec_from_store(store: ResultStore) -> Optional[CampaignSpec]:
    if store.spec_dict is None:
        return None
    return CampaignSpec.from_dict(store.spec_dict)


def _htile_cell(value: Optional[float]) -> object:
    return "-" if value is None else value


def _config_key(point: dict[str, Any]) -> tuple:
    """What identifies a configuration across backends (for error pairing).

    Deliberately seed-agnostic: a deterministic candidate (no seed) must
    still pair with every noisy-simulator baseline replica of the same
    configuration.  Scenario fields *are* part of the configuration - a
    straggler prediction is only comparable to the straggler measurement.
    """
    return (
        point["app"],
        point["platform"],
        point["total_cores"],
        point.get("htile"),
    ) + tuple(point.get(name) for name in _SCENARIO_FIELDS)


def _resolve_baseline(
    spec: Optional[CampaignSpec], records: list[dict[str, Any]]
) -> Optional[str]:
    """The backend playing the "measurement" role in error columns.

    An explicit ``spec.baseline`` wins; otherwise the simulator is assumed
    whenever it appears alongside at least one other backend.
    """
    if spec is not None and spec.baseline is not None:
        return spec.baseline
    backends = {record["point"]["backend"] for record in records}
    if "simulator" in backends and len(backends) > 1:
        return "simulator"
    return None


def _validation_rows(
    records: list[dict[str, Any]], baseline: str
) -> tuple[list[tuple[dict, dict, ValidationResult]], ValidationSummary]:
    """Pair candidate records with their baseline twin(s) and diff the times.

    With a noisy baseline (several seeds per configuration) each candidate
    is diffed against every replica, one row per pairing.
    """
    baselines: dict[tuple, list[dict[str, Any]]] = {}
    for record in records:
        if record["point"]["backend"] == baseline:
            baselines.setdefault(_config_key(record["point"]), []).append(record)
    rows: list[tuple[dict, dict, ValidationResult]] = []
    for record in records:
        point = record["point"]
        if point["backend"] == baseline:
            continue
        for measured in baselines.get(_config_key(point), []):
            diff = ValidationResult(
                application=record["result"]["application"],
                platform=record["result"]["platform"],
                total_cores=record["result"]["processors"],
                cores_per_node=record["result"]["cores_per_node"],
                model_us=record["result"]["time_per_iteration_us"],
                simulated_us=measured["result"]["time_per_iteration_us"],
            )
            rows.append((record, measured, diff))
    return rows, ValidationSummary(results=tuple(diff for _, _, diff in rows))


def _pair_seed(record: dict[str, Any], measured: dict[str, Any]) -> object:
    """The seed identifying a validation pairing (whichever side has one)."""
    seed = record["point"].get("noise_seed")
    if seed is None:
        seed = measured["point"].get("noise_seed")
    return "-" if seed is None else seed


def _curve_groups(
    records: list[dict[str, Any]], axis: str, held: tuple[str, ...]
) -> list[tuple[tuple, list[dict[str, Any]]]]:
    """Group records by ``held`` point fields, keeping groups where ``axis``
    takes >= 2 distinct values (sorted along the axis)."""
    groups: dict[tuple, list[dict[str, Any]]] = {}
    for record in records:
        point = record["point"]
        key = tuple(point.get(name) for name in held)
        groups.setdefault(key, []).append(record)
    curves = []
    for key, members in sorted(groups.items(), key=lambda item: tuple(map(str, item[0]))):
        values = {member["point"].get(axis) for member in members}
        if len(values) < 2:
            continue
        members.sort(key=lambda r: (r["point"].get(axis) is None, r["point"].get(axis)))
        curves.append((key, members))
    return curves


def _scaling_groups(records):
    return _curve_groups(
        records,
        "total_cores",
        ("app", "platform", "backend", "htile", "noise_seed") + _SCENARIO_FIELDS,
    )


def _htile_groups(records):
    usable = [r for r in records if r["point"].get("htile") is not None]
    return _curve_groups(
        usable,
        "htile",
        ("app", "platform", "backend", "total_cores", "noise_seed") + _SCENARIO_FIELDS,
    )


def _optima_groups(
    records: list[dict[str, Any]]
) -> list[tuple[tuple, dict[str, Any], int]]:
    """Per (app, backend, P[, seed]) group: the record minimising execution time.

    Only groups offering an actual design choice - at least two distinct
    (platform, Htile, scenario) configurations at the same core count - are
    reported; the winner row is what the ``optimization-study`` campaign
    uses to restate the paper's configuration conclusions.  Noisy-simulator
    replicas are grouped per seed (a seed column is rendered whenever any
    record carries one), so a lucky replica never masquerades as a better
    design.
    """
    groups: dict[tuple, list[dict[str, Any]]] = {}
    for record in records:
        point = record["point"]
        key = (point["app"], point["backend"], point["total_cores"], point.get("noise_seed"))
        groups.setdefault(key, []).append(record)
    def order(item: tuple) -> tuple:
        app, backend, cores, seed = item[0]
        return (app, backend, cores, -1 if seed is None else int(seed))

    optima = []
    for key, members in sorted(groups.items(), key=order):
        designs = {
            (m["point"]["platform"], m["point"].get("htile"), _scenario_cell(m["point"]))
            for m in members
        }
        if len(designs) < 2:
            continue
        best = min(members, key=lambda m: m["result"]["time_per_time_step_s"])
        optima.append((key, best, len(designs)))
    return optima


def _results_table(
    records: list[dict[str, Any]], with_seeds: bool, with_scenarios: bool
) -> Table:
    headers = ["application", "platform", "P", "grid", "Htile"]
    if with_scenarios:
        headers.append("scenario")
    headers.append("backend")
    if with_seeds:
        headers.append("seed")
    headers += ["time/iter (ms)", "time/time-step (s)", "comm fraction"]
    table = Table(headers)
    for record in records:
        point, result = record["point"], record["result"]
        row = [
            result["application"],
            result["platform"],
            result["processors"],
            result["grid"],
            _htile_cell(point.get("htile")),
        ]
        if with_scenarios:
            row.append(_scenario_cell(point))
        row.append(point["backend"])
        if with_seeds:
            row.append("-" if point.get("noise_seed") is None else point["noise_seed"])
        row += [
            result["time_per_iteration_us"] / 1000.0,
            result["time_per_time_step_s"],
            result["communication_fraction"],
        ]
        table.add_row(*row)
    return table


def campaign_report(store: Union[str, Path, ResultStore]) -> str:
    """Render the campaign's Markdown report from its result store.

    The store's header supplies the campaign definition, so the store path
    is all that is needed (``wavebench campaign report --store PATH``).  The
    output is deterministic: records are sorted by configuration, floats are
    formatted with fixed precision, and nothing run-specific (paths,
    timestamps) is included - an interrupted-then-resumed campaign renders
    byte-identically to an uninterrupted one.

    >>> import tempfile, os
    >>> from repro.campaigns.spec import CampaignSpec
    >>> from repro.campaigns.runner import run_campaign
    >>> spec = CampaignSpec(name="doc", apps=("lu-classA",), total_cores=(4,))
    >>> store_path = os.path.join(tempfile.mkdtemp(), "doc.jsonl")
    >>> _ = run_campaign(spec, store=store_path)
    >>> campaign_report(store_path).splitlines()[0]
    '# Campaign report: doc'
    """
    store = as_store(store)
    spec = _spec_from_store(store)
    records = _sorted_records(store)

    name = spec.name if spec is not None else "(unnamed campaign)"
    lines = [f"# Campaign report: {name}", ""]
    if spec is not None and spec.description:
        lines += [spec.description, ""]

    backends = sorted({r["point"]["backend"] for r in records})
    lines.append(
        f"{len(records)} stored result(s) across {len(backends)} backend(s): "
        + (", ".join(backends) if backends else "none")
        + "."
    )
    if spec is not None:
        missing = sum(1 for point in spec.points() if point.key() not in store)
        if missing:
            lines.append(
                f"**Incomplete:** {missing} of {len(spec.points())} campaign "
                "point(s) missing from the store - re-run to fill the delta."
            )
    lines.append("")

    if not records:
        lines.append("The store holds no results yet.")
        return "\n".join(lines) + "\n"

    with_seeds = any(r["point"].get("noise_seed") is not None for r in records)
    with_scenarios = _has_scenarios(records)

    lines += [
        "## Results",
        "",
        _results_table(records, with_seeds, with_scenarios).render_markdown(),
        "",
    ]

    baseline = _resolve_baseline(spec, records)
    if baseline is not None:
        rows, summary = _validation_rows(records, baseline)
        if rows:
            lines += [f"## Model vs measurement (baseline: {baseline})", ""]
            headers = ["application", "platform", "P", "Htile"]
            if with_scenarios:
                headers.append("scenario")
            headers.append("backend")
            if with_seeds:
                headers.append("seed")
            headers += ["model (ms)", "measured (ms)", "error (%)"]
            table = Table(headers)
            for record, measured, diff in rows:
                point = record["point"]
                row = [
                    diff.application,
                    diff.platform,
                    diff.total_cores,
                    _htile_cell(point.get("htile")),
                ]
                if with_scenarios:
                    row.append(_scenario_cell(point))
                row.append(point["backend"])
                if with_seeds:
                    row.append(_pair_seed(record, measured))
                row += [
                    diff.model_us / 1000.0,
                    diff.simulated_us / 1000.0,
                    f"{100.0 * diff.relative_error:+.2f}",
                ]
                table.add_row(*row)
            lines += [table.render_markdown(), ""]
            lines.append(
                f"Across {len(rows)} configuration(s): max |error| "
                f"{100.0 * summary.max_error:.2f}%, mean |error| "
                f"{100.0 * summary.mean_error:.2f}%."
            )
            for app in sorted({diff.application for _, _, diff in rows}):
                app_summary = summary.by_application(app)
                lines.append(
                    f"- {app}: max |error| {100.0 * app_summary.max_error:.2f}%, "
                    f"mean |error| {100.0 * app_summary.mean_error:.2f}% over "
                    f"{len(app_summary.results)} configuration(s)"
                )
            lines.append("")

    scaling = _scaling_groups(records)
    if scaling:
        lines += ["## Strong scaling (Figure 6 view)", ""]
        for key, members in scaling:
            app, platform, backend, htile, seed = key[:5]
            title = f"### {app} on {platform} - {backend}"
            if htile is not None:
                title += f", Htile={htile:g}"
            if seed is not None:
                title += f", seed={seed}"
            scenario = _scenario_cell(members[0]["point"])
            if scenario != "-":
                title += f" [{scenario}]"
            table = Table(["P", "time/time-step (s)", "total time (days)", "comm fraction"])
            for member in members:
                result = member["result"]
                table.add_row(
                    result["processors"],
                    result["time_per_time_step_s"],
                    result["total_time_days"],
                    result["communication_fraction"],
                )
            lines += [title, "", table.render_markdown(), ""]

    htile_sweeps = _htile_groups(records)
    if htile_sweeps:
        lines += ["## Htile sweeps (Figure 5 view)", ""]
        for key, members in htile_sweeps:
            app, platform, backend, cores, seed = key[:5]
            title = f"### {app} on {platform}, P={cores} - {backend}"
            if seed is not None:
                title += f", seed={seed}"
            scenario = _scenario_cell(members[0]["point"])
            if scenario != "-":
                title += f" [{scenario}]"
            table = Table(["Htile", "time/time-step (s)", "fill fraction", "comm fraction"])
            best = min(members, key=lambda r: r["result"]["time_per_time_step_s"])
            for member in members:
                result = member["result"]
                fill = result.get("pipeline_fill_fraction")
                table.add_row(
                    member["point"]["htile"],
                    result["time_per_time_step_s"],
                    "-" if fill is None else fill,
                    result["communication_fraction"],
                )
            lines += [
                title,
                "",
                table.render_markdown(),
                "",
                f"Optimal Htile: {best['point']['htile']:g}",
                "",
            ]

    optima = _optima_groups(records)
    if optima:
        lines += [
            "## Design optima (optimizer view)",
            "",
            "Best stored configuration per (application, backend, core count"
            + (", seed" if with_seeds else "")
            + ") group - the question `wavebench optimize` answers directly.",
            "",
        ]
        headers = ["application", "backend", "P"]
        if with_seeds:
            headers.append("seed")
        headers += [
            "best platform",
            "best Htile",
            "scenario",
            "time/time-step (s)",
            "designs compared",
        ]
        table = Table(headers)
        for (app, backend, cores, seed), best, compared in optima:
            point, result = best["point"], best["result"]
            row = [app, backend, cores]
            if with_seeds:
                row.append("-" if seed is None else seed)
            row += [
                point["platform"],
                _htile_cell(point.get("htile")),
                _scenario_cell(point),
                result["time_per_time_step_s"],
                compared,
            ]
            table.add_row(*row)
        lines += [table.render_markdown(), ""]

    return "\n".join(lines).rstrip("\n") + "\n"


def _write(path: Path, text: str, written: list[Path]) -> None:
    path.write_text(text, encoding="utf-8")
    written.append(path)


def write_report(
    store: Union[str, Path, ResultStore], output_dir: Union[str, Path]
) -> list[Path]:
    """Write ``report.md`` plus the CSV data files into ``output_dir``.

    Emitted files (only when they would be non-empty):

    * ``report.md`` - the :func:`campaign_report` Markdown;
    * ``results.csv`` - every stored record, flat;
    * ``validation.csv`` - the model-vs-baseline error rows (Tables 4-7);
    * ``figure6_scaling.csv`` - the strong-scaling curve data;
    * ``figure5_htile.csv`` - the Htile sweep data.

    Returns the list of paths written, in a fixed order.  Report files from
    a previous render of the same directory that would not be emitted this
    time (e.g. ``validation.csv`` after the baseline backend was dropped)
    are deleted, so the directory always reflects exactly one store state.

    >>> import tempfile, os
    >>> from repro.campaigns.spec import CampaignSpec
    >>> from repro.campaigns.runner import run_campaign
    >>> spec = CampaignSpec(name="doc", apps=("lu-classA",), total_cores=(4, 16))
    >>> store_path = os.path.join(tempfile.mkdtemp(), "doc.jsonl")
    >>> _ = run_campaign(spec, store=store_path)
    >>> out_dir = os.path.join(tempfile.mkdtemp(), "out")
    >>> [path.name for path in write_report(store_path, out_dir)]
    ['report.md', 'results.csv', 'figure6_scaling.csv']
    """
    store = as_store(store)
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    _write(out / "report.md", campaign_report(store), written)

    records = _sorted_records(store)
    if records:
        table = Table(
            [
                "application",
                "platform",
                "total_cores",
                "grid",
                "cores_per_node",
                "htile",
                "scenario",
                "backend",
                "noise_seed",
                "time_per_iteration_us",
                "computation_per_iteration_us",
                "time_per_time_step_s",
                "total_time_days",
                "computation_fraction",
                "communication_fraction",
                "pipeline_fill_fraction",
            ]
        )
        for record in records:
            point, result = record["point"], record["result"]
            fill = result.get("pipeline_fill_fraction")
            table.add_row(
                result["application"],
                result["platform"],
                result["processors"],
                result["grid"],
                result["cores_per_node"],
                "" if point.get("htile") is None else point["htile"],
                "" if _scenario_cell(point) == "-" else _scenario_cell(point),
                point["backend"],
                "" if point.get("noise_seed") is None else point["noise_seed"],
                result["time_per_iteration_us"],
                result["computation_per_iteration_us"],
                result["time_per_time_step_s"],
                result["total_time_days"],
                result["computation_fraction"],
                result["communication_fraction"],
                "" if fill is None else fill,
            )
        _write(out / "results.csv", table.render_csv(), written)

    spec = _spec_from_store(store)
    baseline = _resolve_baseline(spec, records)
    if baseline is not None:
        rows, _ = _validation_rows(records, baseline)
        if rows:
            table = Table(
                [
                    "application",
                    "platform",
                    "total_cores",
                    "htile",
                    "scenario",
                    "backend",
                    "noise_seed",
                    "model_us",
                    "measured_us",
                    "relative_error",
                ]
            )
            for record, measured, diff in rows:
                point = record["point"]
                seed = _pair_seed(record, measured)
                table.add_row(
                    diff.application,
                    diff.platform,
                    diff.total_cores,
                    "" if point.get("htile") is None else point["htile"],
                    "" if _scenario_cell(point) == "-" else _scenario_cell(point),
                    point["backend"],
                    "" if seed == "-" else seed,
                    diff.model_us,
                    diff.simulated_us,
                    diff.relative_error,
                )
            _write(out / "validation.csv", table.render_csv(), written)

    scaling = _scaling_groups(records)
    if scaling:
        table = Table(
            [
                "application",
                "platform",
                "backend",
                "htile",
                "scenario",
                "total_cores",
                "time_per_time_step_s",
                "total_time_days",
                "communication_fraction",
            ]
        )
        for key, members in scaling:
            app, platform, backend, htile, _seed = key[:5]
            scenario = _scenario_cell(members[0]["point"])
            for member in members:
                result = member["result"]
                table.add_row(
                    app,
                    platform,
                    backend,
                    "" if htile is None else htile,
                    "" if scenario == "-" else scenario,
                    result["processors"],
                    result["time_per_time_step_s"],
                    result["total_time_days"],
                    result["communication_fraction"],
                )
        _write(out / "figure6_scaling.csv", table.render_csv(), written)

    htile_sweeps = _htile_groups(records)
    if htile_sweeps:
        table = Table(
            [
                "application",
                "platform",
                "backend",
                "total_cores",
                "scenario",
                "htile",
                "time_per_time_step_s",
                "pipeline_fill_fraction",
                "communication_fraction",
            ]
        )
        for key, members in htile_sweeps:
            app, platform, backend, cores, _seed = key[:5]
            scenario = _scenario_cell(members[0]["point"])
            for member in members:
                result = member["result"]
                fill = result.get("pipeline_fill_fraction")
                table.add_row(
                    app,
                    platform,
                    backend,
                    cores,
                    "" if scenario == "-" else scenario,
                    member["point"]["htile"],
                    result["time_per_time_step_s"],
                    "" if fill is None else fill,
                    result["communication_fraction"],
                )
        _write(out / "figure5_htile.csv", table.render_csv(), written)

    # Drop report files left behind by a previous render that this render
    # did not produce, so the directory never mixes two store states.
    all_outputs = {
        "report.md",
        "results.csv",
        "validation.csv",
        "figure6_scaling.csv",
        "figure5_htile.csv",
    }
    for name in sorted(all_outputs - {path.name for path in written}):
        stale = out / name
        if stale.exists():
            stale.unlink()

    return written
