"""Packaging entry point.

numpy policy: the library is pure Python and installs without any
third-party runtime dependency.  ``numpy`` is an *optional* accelerator,
declared under the ``[fast]`` extra:

* the calibration kernels (``repro.calibration``) use it for the
  work-rate micro-benchmarks;
* the ``analytic-vec`` backend (``repro.core.model_vec``) uses it for
  struct-of-arrays batch evaluation, and degrades gracefully without it -
  a pure-stdlib vector path produces identical numbers (one warning is
  logged, see ``repro.core.model_vec.warn_on_fallback``), just without
  the array-backend speed.

Nothing in the prediction stack imports numpy unconditionally, which is
pinned by ``tests/test_conformance.py``'s stdlib-fallback conformance
test.
"""

from setuptools import find_packages, setup

setup(
    name="repro-wavebench",
    description=(
        "Reusable LogGP performance model of pipelined wavefront "
        "computations (Mudalige, Vernon & Jarvis, IPDPS 2008 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[],  # pure stdlib at runtime - see the numpy policy above
    extras_require={
        "fast": ["numpy"],  # vectorized batch backend + calibration kernels
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={"console_scripts": ["wavebench=repro.cli:main"]},
)
