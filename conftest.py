"""Repo-root pytest configuration.

Lives at the repository root (not under ``tests/``) because
``pytest_addoption`` only takes effect in *initial* conftests - this way
``pytest --update-golden`` works from the root invocation the CI and the
docs use.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/data/golden_predictions.json from the current "
        "model instead of asserting against it (see docs/platforms.md)",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--update-golden"))
