"""Repo-root pytest configuration.

Lives at the repository root (not under ``tests/``) because
``pytest_addoption`` only takes effect in *initial* conftests - this way
``pytest --update-golden`` works from the root invocation the CI and the
docs use.

Hypothesis profiles are registered here too (the root conftest is imported
before any test module, which is what profile registration requires):

* ``dev`` - the default: fewer examples for fast local iteration;
* ``ci`` - hypothesis's full default example budget, selected in CI via
  ``pytest --hypothesis-profile=ci`` (the flag ships with hypothesis's own
  pytest plugin; it overrides the ``dev`` default loaded below).

Per-test ``@settings(max_examples=...)`` decorations override either
profile, so the deliberately-small property sweeps keep their budgets.
"""

from __future__ import annotations

import pytest
from hypothesis import settings

settings.register_profile("dev", max_examples=25, deadline=None)
settings.register_profile("ci", max_examples=100, deadline=None)
settings.load_profile("dev")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/data/golden_predictions.json from the current "
        "model instead of asserting against it (see docs/platforms.md)",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--update-golden"))
