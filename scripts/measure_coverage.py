#!/usr/bin/env python
"""Stdlib-only line-coverage measurement for the tier-1 suite.

Runs pytest over ``tests/`` with a :func:`sys.settrace` hook restricted to
``src/repro`` frames and reports executed-line coverage per file and in
total.  Exists because the development container has no ``pytest-cov``; the
CI coverage gate (``--cov-fail-under`` in ``.github/workflows/ci.yml``) uses
the real plugin, and this script is how the gate's floor was measured.
Executable lines are taken from compiled code objects (``co_lines``), which
tracks coverage.py's line model closely but not exactly - treat the output
as accurate to about a percentage point.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args...]

Tracing costs roughly a 3-5x slowdown of the suite.

Known undercounts: process-pool workers are not traced, and hypothesis's
explain phase installs its own ``sys.settrace`` hook which can displace
this one for the remainder of a worker thread - so treat the reported
total as a lower bound (repeat runs to tighten it).
"""

from __future__ import annotations

import os
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_PREFIX = str(REPO_ROOT / "src" / "repro") + os.sep

_covered: dict[str, set[int]] = {}


def _global_tracer(frame, event, arg):
    if event != "call":
        return None
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC_PREFIX):
        return None
    lines = _covered.setdefault(filename, set())

    def _local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return _local

    return _local


def _executable_lines(path: Path) -> set[int]:
    """All line numbers that carry bytecode, via recursive code-object walk."""
    try:
        code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(
            line for _start, _end, line in obj.co_lines() if line is not None
        )
        stack.extend(const for const in obj.co_consts if hasattr(const, "co_lines"))
    return lines


def main() -> int:
    import pytest

    args = sys.argv[1:] or ["tests", "-q", "-p", "no:cacheprovider"]
    sys.settrace(_global_tracer)
    threading.settrace(_global_tracer)
    exit_code = pytest.main(args)
    sys.settrace(None)
    threading.settrace(None)
    if exit_code not in (0,):
        print(f"pytest exited {exit_code}; coverage below reflects a partial run")

    total_executable = 0
    total_covered = 0
    rows = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        executable = _executable_lines(path)
        if not executable:
            continue
        covered = _covered.get(str(path), set()) & executable
        total_executable += len(executable)
        total_covered += len(covered)
        rows.append(
            (
                str(path.relative_to(REPO_ROOT)),
                len(covered),
                len(executable),
                100.0 * len(covered) / len(executable),
            )
        )
    width = max(len(name) for name, *_ in rows)
    for name, covered, executable, percent in rows:
        print(f"{name:<{width}}  {covered:5d}/{executable:5d}  {percent:6.1f}%")
    overall = 100.0 * total_covered / total_executable if total_executable else 0.0
    print(f"{'TOTAL':<{width}}  {total_covered:5d}/{total_executable:5d}  {overall:6.1f}%")
    return int(exit_code)


if __name__ == "__main__":
    sys.exit(main())
